package helix

import (
	"context"
	"fmt"
	"iter"

	"helix/internal/exec"
)

// Streaming row-wise operators. MapRows, FilterRows, and FlatMapRows
// declare operators the planner may fuse: a linear chain of them executes
// as one scheduled unit with per-element pull, so only the chain's
// endpoints are ever fully built — no per-operator barrier, no interior
// collection proportional to the data. Fusion is a pure execution
// strategy: each member keeps its own chain signature, so plan
// fingerprints, materialization keys, and cross-iteration reuse behave
// exactly as they do for batch operators, and the fuzz harness proves
// streaming-on and streaming-off runs byte-identical.
//
// They are free functions rather than Workflow methods because Go
// methods cannot introduce type parameters.

// MapRows declares a row-wise 1:1 transformation over a []In input,
// producing []Out. params must identify f for equivalence tracking, as
// with every operator declaration. The operator is an Extractor (feature
// extraction/transformation ∈ F) and is streamable: when streaming is
// enabled (the default) the planner may fuse it with adjacent row-wise
// operators.
func MapRows[In, Out any](w *Workflow, name, params string, f func(In) Out, input *Op) *Op {
	return declareRowOp[In, Out](w, name, extractorKind, params, input,
		func(row any, emit func(any) bool) error {
			emit(f(row.(In)))
			return nil
		})
}

// FilterRows declares a row-wise predicate over a []T input, keeping the
// rows for which pred is true. Streamable, like MapRows.
func FilterRows[T any](w *Workflow, name, params string, pred func(T) bool, input *Op) *Op {
	return declareRowOp[T, T](w, name, extractorKind, params, input,
		func(row any, emit func(any) bool) error {
			if pred(row.(T)) {
				emit(row)
			}
			return nil
		})
}

// FlatMapRows declares a row-wise 1:N expansion over a []In input,
// producing []Out — the streaming analogue of Scanner's flatMap-over-
// records behavior, and declared as a Scanner (parsing ∈ F). Streamable,
// like MapRows.
func FlatMapRows[In, Out any](w *Workflow, name, params string, f func(In) []Out, input *Op) *Op {
	return declareRowOp[In, Out](w, name, scannerKind, params, input,
		func(row any, emit func(any) bool) error {
			for _, u := range f(row.(In)) {
				if !emit(u) {
					return nil
				}
			}
			return nil
		})
}

// declareRowOp declares one streamable operator: the untyped RowOp the
// engine fuses, plus a batch OpFunc over the very same RowOp — sharing
// the per-row implementation is what makes streaming-on and
// streaming-off produce byte-identical values.
func declareRowOp[In, Out any](w *Workflow, name string, kind opKind, params string, input *Op, apply func(row any, emit func(any) bool) error) *Op {
	row := &exec.RowOp{
		Seq:   rowSeq[In],
		Apply: apply,
		Build: buildRows[Out],
	}
	fn := func(ctx context.Context, inputs []Value) (Value, error) {
		return exec.RunRowOp(ctx, row, inputs)
	}
	var o *Op
	switch kind {
	case scannerKind:
		o = w.Scanner(name, params, fn, input)
	default:
		o = w.Extractor(name, params, fn, input)
	}
	o.row = row
	return o
}

// opKind distinguishes the DSL declaration a streamable operator lowers
// to; the core.Kind itself lives in internal/core.
type opKind int

const (
	extractorKind opKind = iota
	scannerKind
)

// rowSeq adapts a []In operator input into the untyped row stream a
// fused chain's head pulls from. An untyped nil (pruned or empty
// upstream) streams zero rows.
func rowSeq[In any](v any) (iter.Seq[any], error) {
	if v == nil {
		return func(yield func(any) bool) {}, nil
	}
	in, ok := v.([]In)
	if !ok {
		return nil, tagged(ErrBadWorkflow, fmt.Errorf("helix: streaming operator expects %T input, got %T", in, v))
	}
	return func(yield func(any) bool) {
		for _, r := range in {
			if !yield(r) {
				return
			}
		}
	}, nil
}

// buildRows assembles a streamable operator's []Out output from its
// transformed row stream. An empty stream yields nil, matching the
// append-based batch operators byte-for-byte under encoding.
func buildRows[Out any](rows iter.Seq[any]) (any, error) {
	var out []Out
	for r := range rows {
		out = append(out, r.(Out))
	}
	return out, nil
}
