package helix

import (
	"fmt"
	"sync"

	"helix/internal/plan"
	"helix/internal/store"
)

// SharedStore is a content-addressed artifact store plus a process-wide
// plan cache that any number of Sessions attach to concurrently
// (WithSharedStore). It is the cross-session multiplier on the paper's
// reuse win: artifacts are keyed by chain signature — a sha256 content
// hash over the operator chain — so two sessions (or tenants) running the
// same featurization prefix publish it once and load it from each other,
// and a workflow one session already planned is a full plan-cache hit
// (zero max-flow solves) for every later session under the same
// configuration.
//
// Publishes are atomic (temp file + rename) and write-once; entries a
// live session's executed plan depends on are pinned against purging;
// per-tenant byte accounting (WithTenant, TenantBytes) layers on the
// per-session materialization budgets so one tenant's writes cannot drain
// another's.
//
// Lifecycle: OpenSharedStore once, pass the handle to each Open via
// WithSharedStore, Close the sessions, then Close the handle. Closing the
// handle stops the background writer pool; sessions still attached keep
// working with synchronous writes.
type SharedStore struct {
	handle *store.Shared
	cache  *plan.SharedCache

	// mu guards the first-attach store-level configuration below.
	//lint:nolockio
	mu     sync.Mutex
	cfgSig string // store-level settings pinned by the first session
}

// OpenSharedStore opens (creating if needed) a shared artifact store
// rooted at dir. Store-level settings — disk throughput, codec, writer
// pool — are adopted from the first session that attaches; a later
// session requesting different ones fails with ErrSharedConfig.
func OpenSharedStore(dir string) (*SharedStore, error) {
	h, err := store.OpenShared(dir)
	if err != nil {
		return nil, err
	}
	return &SharedStore{handle: h, cache: plan.NewSharedCache()}, nil
}

// Dir returns the store's root directory.
func (h *SharedStore) Dir() string { return h.handle.Store().Dir() }

// Artifacts reports the number of artifacts currently published.
func (h *SharedStore) Artifacts() int { return h.handle.Store().Len() }

// StorageBytes reports total on-disk bytes across all tenants.
func (h *SharedStore) StorageBytes() int64 { return h.handle.Store().UsedBytes() }

// TenantBytes reports the on-disk bytes published under one tenant label
// (WithTenant). Accounting, not access control: artifacts are shared
// across tenants by content address.
func (h *SharedStore) TenantBytes(tenant string) int64 { return h.handle.TenantBytes(tenant) }

// Sessions reports the number of currently attached sessions.
func (h *SharedStore) Sessions() int { return h.handle.Attachments() }

// PlanCacheStats reports the shared plan cache's consultation counters
// across every attached session.
func (h *SharedStore) PlanCacheStats() plan.CacheStats { return h.cache.Stats() }

// Close flushes pending writes, persists the manifest, and stops the
// writer pool. Idempotent. Sessions still attached keep working (their
// writes degrade to synchronous); new attachments fail.
func (h *SharedStore) Close() error { return h.handle.Close() }

// storeConfigSig renders the store-level settings a config requests, for
// first-attach-wins conflict detection.
func storeConfigSig(cfg *config) string {
	return fmt.Sprintf("disk=%g writers=%d codec=%d",
		cfg.o.DiskBytesPerSec, cfg.o.MatWriters, cfg.o.Codec)
}

// attach validates cfg's store-level settings against the shared store's
// (first session wins, later conflicts error) and registers the session.
func (h *SharedStore) attach(cfg *config) (*store.Attachment, error) {
	sig := storeConfigSig(cfg)
	h.mu.Lock()
	if h.cfgSig == "" {
		h.cfgSig = sig
		st := h.handle.Store()
		st.DiskBytesPerSec = cfg.o.DiskBytesPerSec
		st.Writers = cfg.o.MatWriters
		if cfg.o.Codec == CodecGob {
			st.Codec = store.GobCodec{}
		}
	} else if h.cfgSig != sig {
		h.mu.Unlock()
		return nil, tagged(ErrSharedConfig, fmt.Errorf(
			"helix: shared store %s is configured with %q, session requested %q", h.Dir(), h.cfgSig, sig))
	}
	h.mu.Unlock()
	return h.handle.Attach(cfg.tenant)
}

// WithSharedStore attaches the session to a shared content-addressed
// store instead of opening a private one: Open's dir argument is ignored,
// artifacts are published once per chain signature and loaded by any
// attached session, and planning uses the process-wide shared plan cache
// (a workflow one session planned is a zero-solve cache hit for the
// next). Session-scoped. Combine with WithTenant to label published
// bytes for per-tenant accounting.
func WithSharedStore(h *SharedStore) Option {
	return Option{name: "WithSharedStore", sessionOnly: true,
		apply: func(c *config) {
			if h == nil {
				if c.err == nil {
					c.err = fmt.Errorf("helix: WithSharedStore(nil)")
				}
				return
			}
			c.shared = h
		}}
}

// WithTenant labels the session's published artifacts with a tenant
// namespace for shared-store byte accounting (SharedStore.TenantBytes).
// The label does not partition reuse — equivalent artifacts are shared
// across tenants — and does not affect planning, so sessions of different
// tenants still share each other's plans. Session-scoped; only meaningful
// with WithSharedStore.
func WithTenant(name string) Option {
	return Option{name: "WithTenant", sessionOnly: true,
		apply: func(c *config) { c.tenant = name }}
}
