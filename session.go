package helix

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"helix/internal/core"
	"helix/internal/exec"
	"helix/internal/opt"
	"helix/internal/plan"
	"helix/internal/store"
)

// Result reports one iteration's execution: output values, per-node
// states and timings, component breakdown (Figure 6), materialization
// overhead, storage and memory statistics.
type Result = exec.Result

// NodeReport is the per-operator outcome within a Result.
type NodeReport = exec.NodeReport

// Policy selects the materialization strategy (paper §6.1's system
// variants).
type Policy int

const (
	// PolicyOpt is HELIX OPT: the streaming OMP heuristic (Algorithm 2).
	PolicyOpt Policy = iota
	// PolicyAlways is HELIX AM: materialize every intermediate result.
	PolicyAlways
	// PolicyNever is HELIX NM: never materialize intermediates.
	PolicyNever
	// PolicyOptMiniBatch adapts the streaming heuristic to mini-batch
	// stream processing (paper §5.3, "Mini-Batches"): materialization
	// decisions are made from the first batch processed end-to-end and
	// replayed for every subsequent batch, avoiding dataset fragmentation.
	PolicyOptMiniBatch
	// PolicyOptAmortized extends the streaming heuristic with the paper's
	// future-work user model (§5.3): materialization payoff is weighted
	// by the survey-derived probability that the operator survives the
	// next iteration's change. Set Options.Domain to select the change
	// distribution.
	PolicyOptAmortized
)

// Options is the original monolithic configuration struct, kept as a
// compatibility shim: NewSession(dir, Options{...}) behaves exactly like
// Open(dir, WithOptions(Options{...})), and every field has a functional
// option counterpart (see the Option constructors and the README's
// migration table).
//
// Deprecated: configure sessions with Open and functional options, which
// additionally support run-scoped overrides on Run and Plan.
//
// helixlint (fingerprintfields) checks every field against configToken
// (and its budget helper), the plan-cache conditioning token: a new
// engine-level knob must feed the token or carry an //lint:fpexempt
// reason saying why plan reuse is safe without it.
//
//lint:fingerprint configToken budget
type Options struct {
	// Policy selects the materialization strategy. Default PolicyOpt.
	Policy Policy
	// StorageBudget caps materialized bytes for PolicyOpt; ≤0 means the
	// paper's default of 10 GB (§6.3).
	StorageBudget int64
	// OMPThreshold overrides Algorithm 2's load-cost multiplier for
	// PolicyOpt; 0 means the paper's value of 2. Exposed for the ablation
	// benchmark.
	OMPThreshold float64
	// Domain selects the change-probability distribution for
	// PolicyOptAmortized ("census", "nlp", "genomics", "mnist").
	Domain string
	// DisableReuse turns off cross-iteration reuse (the KeystoneML and
	// DeepDive baselines do not reuse automatically).
	//lint:fpexempt planner-level knob; enters the fingerprint via plan.Options.DisableReuse
	DisableReuse bool
	// DisablePruning turns off program slicing (ablation).
	//lint:fpexempt planner-level knob; enters the fingerprint via plan.Options.DisablePruning
	DisablePruning bool
	// SampleMemory enables heap sampling for Figure 10.
	//lint:fpexempt observability only; sampling never changes what is planned or computed
	SampleMemory bool
	// DPRSlowdown multiplies DPR operator cost (models DeepDive's
	// Python/shell preprocessing; §6.5.2). 0 or 1 disables.
	//lint:fpexempt execution-side sleep; its effect reaches the fingerprint through the carried cost statistics of the runs it slows
	DPRSlowdown float64
	// LISlowdown multiplies L/I operator cost (models KeystoneML's
	// training-data caching miss; §6.5.2). 0 or 1 disables.
	//lint:fpexempt execution-side sleep; its effect reaches the fingerprint through the carried cost statistics of the runs it slows
	LISlowdown float64
	// DiskBytesPerSec simulates a disk with the given throughput for
	// loads and writes; 0 uses real disk speed. The paper's environment
	// is 170 MB/s (§6.3).
	//lint:fpexempt simulated throughput shapes measured load costs, which reach the fingerprint as per-node load estimates
	DiskBytesPerSec float64
	// SyncMaterialization disables write-behind materialization: results
	// are serialized and written inline on the worker goroutine that
	// computed them, putting the full materialization cost back on each
	// iteration's critical path. Default false (write-behind).
	//lint:fpexempt write-behind vs inline changes when bytes hit disk, not what is planned
	SyncMaterialization bool
	// MatWriters sizes the store's background writer pool for write-behind
	// materialization; ≤0 uses the store default.
	//lint:fpexempt store writer-pool sizing, not plan identity
	MatWriters int
	// Parallelism bounds the execution scheduler's worker pool: at most
	// this many operators run concurrently, regardless of DAG width. ≤0
	// uses runtime.GOMAXPROCS(0).
	Parallelism int
	// PlanCache controls the iteration-over-iteration plan cache. The
	// zero value, PlanCacheOn, fingerprints every iteration's planning
	// inputs (DAG topology, chain signatures, the store's materialized
	// set, carried statistics, options) and reuses the previous
	// iteration's plan wholesale on a full match — skipping slicing,
	// ancestor-bitset construction, and the max-flow solve — or
	// re-solves only the changed components on a partial match.
	// PlanCacheOff forces a cold solve every iteration.
	//lint:fpexempt controls the plan cache itself; a mode change can only force cold solves, never stale reuse
	PlanCache PlanCacheMode
	// CriticalPath selects the execution scheduler's ready-queue
	// ordering. The zero value, SchedCriticalPath, starts the ready node
	// with the longest projected downstream chain first (using the
	// plan's ProjectedTail values) so stragglers on unbalanced DAGs
	// claim workers early; it degrades to FIFO when no projections
	// exist. SchedFIFO forces pure arrival order.
	//lint:fpexempt ready-queue ordering changes execution interleaving, never the plan
	CriticalPath SchedMode
	// DisableStreaming turns off fused streaming execution: every
	// streamable operator (MapRows/FilterRows/FlatMapRows) runs as an
	// ordinary batch operator with its own scheduler slot and fully
	// built output. Default false (streaming on).
	//lint:fpexempt planner-level knob; enters the fingerprint via plan.Options.Streaming
	DisableStreaming bool
	// Codec selects the store's serialization format. The zero value,
	// CodecBinary, is the columnar binary codec; CodecGob writes legacy
	// encoding/gob. Both read either format (the binary header is
	// sniffed), so existing artifacts stay loadable across the switch.
	//lint:fpexempt serialization format; both codecs read either format, so materialized artifacts stay valid across a switch
	Codec Codec
}

// Codec selects the materialization store's serialization format
// (Options.Codec, WithCodec).
type Codec int

const (
	// CodecBinary writes the columnar binary format: varint numerics,
	// interned strings, columnar layouts for the repo's row types, a
	// gob escape hatch for everything else — behind a versioned header.
	CodecBinary Codec = iota
	// CodecGob writes legacy encoding/gob, for A/B comparison and
	// byte-level compatibility testing. Reads both formats.
	CodecGob
)

// PlanCacheMode toggles the session's plan cache (Options.PlanCache).
type PlanCacheMode int

const (
	// PlanCacheOn enables incremental planning (the default).
	PlanCacheOn PlanCacheMode = iota
	// PlanCacheOff re-solves the execution plan from scratch every
	// iteration (the pre-cache behavior).
	PlanCacheOff
)

// SchedMode selects the scheduler's ready-queue ordering
// (Options.CriticalPath).
type SchedMode = exec.SchedMode

// Scheduler orderings: critical-path priority (default) or pure FIFO.
const (
	SchedCriticalPath = exec.SchedCriticalPath
	SchedFIFO         = exec.SchedFIFO
)

// DefaultStorageBudget is the paper's experimental storage budget (§6.3).
const DefaultStorageBudget = 10 << 30

// Session executes successive iterations of a workflow, carrying the
// previous iteration's DAG and materialization store across runs — the
// workflow lifecycle of Figure 2. Sessions persist their change-tracking
// state (node signatures, operator statistics, and iteration history)
// next to the store, so reopening a session on the same directory
// resumes reuse across process restarts.
//
// A Session supports one Run at a time: a second concurrent Run returns
// ErrConcurrentRun rather than queueing (see Run). Plan is read-only and
// may be called concurrently with itself and with Run.
type Session struct {
	store  *store.Store
	engine *exec.Engine
	dir    string
	// att is the session's handle on a shared store (WithSharedStore);
	// nil for a private store. When set, the session detaches on Close
	// instead of closing the store, pins its last executed plan's
	// signatures against purging, and skips session.json persistence —
	// many sessions share one directory, and cross-session reuse flows
	// through the content-addressed store and shared plan cache instead.
	att *store.Attachment
	// base is the session-scoped configuration Open resolved; Run/Plan
	// copy it and layer run-scoped overrides on the copy.
	base config

	// polMu guards policies, the memoized materialization-policy
	// instances keyed by config.policyKey. Memoization makes run-scoped
	// policy overrides stateful in the useful sense: reverting to a
	// configuration resumes its policy's budget accounting.
	//lint:nolockio
	polMu    sync.Mutex
	policies map[string]opt.MatPolicy

	// running rejects concurrent Run calls (ErrConcurrentRun).
	running atomic.Bool

	// mu guards the iteration state below; critical sections are short
	// (snapshot at Run entry, update at Run exit) so Plan and History can
	// read consistently while a Run is in flight. State persistence
	// snapshots under the lock and writes after release.
	//lint:nolockio
	mu      sync.Mutex
	prev    *core.DAG
	iter    int
	history []IterationRecord
	closed  bool
	// runActive is true while a Run is between its entry snapshot and its
	// final state update; Close waits on runDone until it clears so the
	// store is never torn down under an executing iteration.
	runActive bool
	runDone   *sync.Cond
}

// sessionStateFile holds the persisted snapshot within the store dir.
const sessionStateFile = "session.json"

// sessionState is the on-disk session record.
type sessionState struct {
	Iteration int               `json:"iteration"`
	Snapshot  core.Snapshot     `json:"snapshot"`
	History   []IterationRecord `json:"history,omitempty"`
}

// Open opens a session whose materialization store lives in dir,
// configured by functional options:
//
//	sess, err := helix.Open(dir,
//	    helix.WithPolicy(helix.PolicyOpt),
//	    helix.WithParallelism(8),
//	    helix.WithObserver(progress))
//
// If the directory holds a previous session's state, change tracking
// resumes from it: unchanged operators can reuse results materialized
// before the restart. The options form the session's baseline
// configuration; Run and Plan accept the same (run-scoped) options as
// per-call overrides.
func Open(dir string, opts ...Option) (*Session, error) {
	var cfg config
	if err := cfg.apply(opts, false); err != nil {
		return nil, err
	}
	// Build and validate the materialization policy before anything
	// stateful opens: the historical unknown-policy branch returned after
	// store.Open without closing it, leaking the writer pool. Failing
	// first means a bad configuration can never leak resources.
	pol, err := buildPolicy(&cfg)
	if err != nil {
		return nil, err
	}
	var (
		st  *store.Store
		att *store.Attachment
	)
	if cfg.shared != nil {
		// Shared mode: attach to the cross-session store (dir is ignored —
		// the store owns its directory). Store-level settings were either
		// adopted from this config (first attach) or validated against the
		// first session's (ErrSharedConfig on conflict).
		att, err = cfg.shared.attach(&cfg)
		if err != nil {
			return nil, err
		}
		st = att.Store()
	} else {
		st, err = store.Open(dir)
		if err != nil {
			return nil, err
		}
		st.DiskBytesPerSec = cfg.o.DiskBytesPerSec
		st.Writers = cfg.o.MatWriters
		if cfg.o.Codec == CodecGob {
			st.Codec = store.GobCodec{}
		}
	}
	s := &Session{
		store:    st,
		att:      att,
		dir:      st.Dir(),
		base:     cfg,
		policies: map[string]opt.MatPolicy{cfg.policyKey(): pol},
	}
	s.runDone = sync.NewCond(&s.mu)
	s.engine = &exec.Engine{Store: st, Opts: s.execOptions(&cfg, pol)}
	switch {
	case cfg.shared != nil:
		// The process-wide plan cache + frozen statistics board replace the
		// per-session MRU: a workflow any attached session planned is a
		// zero-solve fingerprint hit for every other session under the same
		// configuration (the config token is still hashed per call, so
		// differing configurations never share decisions).
		s.engine.Shared = cfg.shared.cache
		if cfg.o.PlanCache != PlanCacheOff {
			s.engine.Cache = cfg.shared.cache.Cache()
		}
	case cfg.o.PlanCache != PlanCacheOff:
		// The config token pins every engine-level setting plan reuse
		// must be conditioned on: a run under a different policy, budget,
		// threshold, domain, or parallelism — whether a differently
		// opened session or a run-scoped override — fingerprints
		// differently and can never reuse this configuration's decisions.
		s.engine.Cache = plan.NewCache(cfg.configToken())
	}
	if att == nil {
		// session.json is per-session state; shared-mode sessions share one
		// directory and resume reuse through the content-addressed store
		// and shared plan cache instead.
		s.loadState()
	}
	return s, nil
}

// NewSession opens a session configured by at most one legacy Options
// struct. It is a shim over Open: NewSession(dir, o) ≡
// Open(dir, WithOptions(o)).
//
// Deprecated: use Open with functional options.
func NewSession(dir string, options ...Options) (*Session, error) {
	if len(options) > 1 {
		return nil, tagged(ErrBadConfig, fmt.Errorf("helix: at most one Options value"))
	}
	if len(options) == 1 {
		return Open(dir, WithOptions(options[0]))
	}
	return Open(dir)
}

// buildPolicy constructs the materialization policy a config selects, or
// an error satisfying errors.Is(err, ErrPolicyUnknown).
func buildPolicy(cfg *config) (opt.MatPolicy, error) {
	budget := cfg.budget()
	switch cfg.o.Policy {
	case PolicyOpt:
		somp := opt.NewStreamingOMP(budget)
		if cfg.o.OMPThreshold > 0 {
			somp.Threshold = cfg.o.OMPThreshold
		}
		return somp, nil
	case PolicyAlways:
		return opt.AlwaysMat{}, nil
	case PolicyNever:
		return opt.NeverMat{}, nil
	case PolicyOptMiniBatch:
		somp := opt.NewStreamingOMP(budget)
		if cfg.o.OMPThreshold > 0 {
			somp.Threshold = cfg.o.OMPThreshold
		}
		return opt.NewMiniBatchOMP(somp), nil
	case PolicyOptAmortized:
		aomp := opt.NewAmortizedOMP(opt.SurveyChangeModel(cfg.o.Domain), budget)
		if cfg.o.OMPThreshold > 0 {
			aomp.Threshold = cfg.o.OMPThreshold
		}
		return aomp, nil
	default:
		return nil, tagged(ErrPolicyUnknown, fmt.Errorf("helix: unknown policy %d", cfg.o.Policy))
	}
}

// policyFor returns the memoized policy instance for cfg's policy
// configuration, constructing it on first use.
func (s *Session) policyFor(cfg *config) (opt.MatPolicy, error) {
	key := cfg.policyKey()
	s.polMu.Lock()
	defer s.polMu.Unlock()
	if pol, ok := s.policies[key]; ok {
		return pol, nil
	}
	pol, err := buildPolicy(cfg)
	if err != nil {
		return nil, err
	}
	s.policies[key] = pol
	return pol, nil
}

// execOptions lowers a resolved config (plus its policy instance) to the
// engine-level options one Plan/Run call executes under.
func (s *Session) execOptions(cfg *config, pol opt.MatPolicy) exec.Options {
	return exec.Options{
		Policy:              pol,
		DisableReuse:        cfg.o.DisableReuse,
		MaterializeOutputs:  cfg.o.Policy != PolicyNever,
		DPRSlowdown:         cfg.o.DPRSlowdown,
		LISlowdown:          cfg.o.LISlowdown,
		SampleMemory:        cfg.o.SampleMemory,
		DisablePruning:      cfg.o.DisablePruning,
		SyncMaterialization: cfg.o.SyncMaterialization,
		DisableStreaming:    cfg.o.DisableStreaming,
		Parallelism:         cfg.o.Parallelism,
		Sched:               cfg.o.CriticalPath,
		IOWorkers:           cfg.ioWorkers,
		ConfigToken:         cfg.configToken(),
		Observer:            cfg.observer,
		Shared:              cfg.shared != nil,
		Tenant:              cfg.tenant,
		AdaptiveThreshold:   cfg.adaptive,
		AdaptiveMaxSolves:   cfg.adaptiveSolves,
	}
}

// runConfig resolves one Run/Plan call's effective configuration: the
// session baseline plus run-scoped overrides, with the policy memoized
// and every cache-relevant knob folded into the config token.
func (s *Session) runConfig(opts []Option) (exec.Options, error) {
	cfg := s.base
	cfg.err = nil
	if err := cfg.apply(opts, true); err != nil {
		return exec.Options{}, err
	}
	pol, err := s.policyFor(&cfg)
	if err != nil {
		return exec.Options{}, err
	}
	return s.execOptions(&cfg, pol), nil
}

// PlanCacheStats reports the session's plan-cache consultation counters:
// full fingerprint hits (plans reused with zero solves), partial hits
// (only dirty components re-solved), and misses (cold solves). All zero
// when the cache is disabled.
func (s *Session) PlanCacheStats() plan.CacheStats {
	if s.engine.Cache == nil {
		return plan.CacheStats{}
	}
	return s.engine.Cache.Stats()
}

// loadState restores persisted change-tracking state; absence or
// corruption silently degrades to a fresh session (everything original).
// Stale saveState temp files (a process that crashed between CreateTemp
// and Rename) are swept here so they cannot accumulate across restarts.
func (s *Session) loadState() {
	if stale, err := filepath.Glob(filepath.Join(s.dir, sessionStateFile+".tmp-*")); err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}
	data, err := os.ReadFile(filepath.Join(s.dir, sessionStateFile))
	if err != nil {
		return
	}
	var st sessionState
	if err := json.Unmarshal(data, &st); err != nil {
		return
	}
	s.iter = st.Iteration
	s.prev = core.FromSnapshot(st.Snapshot)
	s.history = st.History
}

// saveState persists change-tracking state (and the iteration history)
// for restart resumption. A failed write is non-fatal: the next process
// simply recomputes. The write is atomic — temp file then rename — so a
// crash mid-write can never leave a truncated session.json behind; the
// previous snapshot (or none) survives intact and loadState's corruption
// handling is reserved for genuinely external damage.
func (s *Session) saveState() {
	s.mu.Lock()
	if s.prev == nil {
		s.mu.Unlock()
		return
	}
	st := sessionState{
		Iteration: s.iter,
		Snapshot:  s.prev.Snapshot(),
		History:   append([]IterationRecord(nil), s.history...),
	}
	s.mu.Unlock()
	data, err := json.Marshal(st)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, sessionStateFile+".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	// CreateTemp opens 0600; restore the file's historical 0644 so external
	// tooling inspecting the session directory keeps read access.
	merr := tmp.Chmod(0o644)
	// Sync before the rename: POSIX does not order data writes against the
	// rename, so without it a system crash could make the new name durable
	// while its contents are not — the truncated-file outcome this whole
	// dance exists to rule out.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || merr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, sessionStateFile)); err != nil {
		os.Remove(tmp.Name())
	}
}

// Iteration returns the index of the next iteration to run (0-based).
func (s *Session) Iteration() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.iter
}

// StorageBytes reports the store's current on-disk usage (Figure 9c,d).
func (s *Session) StorageBytes() int64 { return s.store.UsedBytes() }

// Plan compiles wf and returns the execution plan Run would carry out for
// it right now — per-node states, costs, originality, liveness, the
// projected run time T(W,s) of Equation 1, and a rationale for every
// decision — without executing anything. Run-scoped options override the
// session baseline for this call only, so an override's plan can be
// inspected before (or without) running it. Planning is read-only with
// respect to the session: the iteration counter, the previous iteration's
// DAG, and the materialization store are left untouched, so Plan may be
// called any number of times (and interleaved with Run) purely for
// inspection. Render the result with Plan.Explain() or Workflow.PlanDOT.
func (s *Session) Plan(wf *Workflow, opts ...Option) (*Plan, error) {
	s.mu.Lock()
	prev, iter, closed := s.prev, s.iter, s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	eo, err := s.runConfig(opts)
	if err != nil {
		return nil, err
	}
	prog, err := wf.Compile()
	if err != nil {
		return nil, err
	}
	return s.engine.PlanWith(prog.DAG, prev, iter, eo)
}

// Run compiles and executes one iteration of wf, then advances the
// session: the executed DAG becomes the previous iteration for change
// tracking on the next Run (paper §2.2: "The updated workflow W_{t+1}
// fed back to HELIX marks the beginning of a new iteration").
//
// Run-scoped options override the session baseline for this call only —
// policy, budget, parallelism, worker classes, scheduler, reuse/pruning
// toggles, observer. Overrides are plan-cache safe: the effective
// configuration is folded into the plan fingerprint, so differing
// configurations never reuse each other's plans, and reverting an
// override hits the earlier configuration's cached plan again.
//
// A Session runs one iteration at a time. A second Run while one is in
// flight returns ErrConcurrentRun immediately — calls are rejected, not
// serialized, because change tracking is defined against the previous
// completed iteration and queueing would make the result order (and thus
// every subsequent plan) depend on scheduler timing. Run after Close
// returns ErrSessionClosed.
func (s *Session) Run(ctx context.Context, wf *Workflow, opts ...Option) (*Result, error) {
	if !s.running.CompareAndSwap(false, true) {
		return nil, ErrConcurrentRun
	}
	defer s.running.Store(false)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.runActive = true
	prev, iter := s.prev, s.iter
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.runActive = false
		s.runDone.Broadcast()
		s.mu.Unlock()
	}()
	eo, err := s.runConfig(opts)
	if err != nil {
		return nil, err
	}
	prog, err := wf.Compile()
	if err != nil {
		return nil, err
	}
	started := time.Now()
	res, err := s.engine.RunWith(ctx, prog, prev, iter, eo)
	if err != nil {
		return nil, err
	}
	// Write-behind barrier: the engine already drains its own iteration's
	// writes, but the explicit Flush here is the documented contract — no
	// materialization accepted by run N may be invisible to run N+1, and
	// the manifest on disk reflects everything this iteration stored.
	// The error is discarded on purpose: an individual write failure
	// degrades to "not materialized" (identically in sync and async
	// modes), it never fails the iteration — the computed outputs are
	// already in hand.
	_ = s.store.Flush()
	if s.att != nil {
		// Pin this run's full signature set: everything the session's
		// current results load from (or could re-load from) is now
		// protected from another session's purge until the next Run
		// replaces the pins or Close releases them.
		sigs := make([]string, 0, len(res.Plan.Nodes))
		for _, np := range res.Plan.Nodes {
			sigs = append(sigs, np.Node.ChainSignature())
		}
		s.att.Repin(sigs)
	}
	s.mu.Lock()
	s.recordHistory(wf, res, started, changedOperators(prog.DAG, prev))
	s.prev = prog.DAG
	s.iter++
	s.mu.Unlock()
	if s.att == nil {
		s.saveState()
	}
	return res, nil
}

// RunTimed is Run plus a convenience wall-clock duration, for harness
// code that aggregates cumulative run time (Figure 5).
func (s *Session) RunTimed(ctx context.Context, wf *Workflow, opts ...Option) (*Result, time.Duration, error) {
	start := time.Now()
	res, err := s.Run(ctx, wf, opts...)
	return res, time.Since(start), err
}

// Close flushes any write-behind materializations still in flight, stops
// the store's writer pool, and persists the session's change-tracking
// state. The session and its store directory remain readable afterwards;
// a session reopened on the same directory resumes reuse and its
// iteration history. Always call Close (directly or deferred) when done
// with a session — otherwise background writes may still be in flight
// when the process exits. Close is idempotent; Run and Plan after Close
// return ErrSessionClosed.
//
// Close is safe to call while a Run is in flight: it blocks until that
// iteration completes (the iteration itself runs to completion and its
// results remain valid), then tears down the store. Run calls that start
// after Close has begun return ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for s.runActive {
		s.runDone.Wait()
	}
	s.mu.Unlock()
	if s.att != nil {
		// Shared store: flush this session's writes and release its pins;
		// the store itself stays open for other sessions and is torn down
		// by SharedStore.Close.
		return s.att.Detach()
	}
	s.saveState()
	return s.store.Close()
}
