package helix

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"helix/internal/core"
	"helix/internal/exec"
	"helix/internal/opt"
	"helix/internal/plan"
	"helix/internal/store"
)

// Result reports one iteration's execution: output values, per-node
// states and timings, component breakdown (Figure 6), materialization
// overhead, storage and memory statistics.
type Result = exec.Result

// NodeReport is the per-operator outcome within a Result.
type NodeReport = exec.NodeReport

// Policy selects the materialization strategy (paper §6.1's system
// variants).
type Policy int

const (
	// PolicyOpt is HELIX OPT: the streaming OMP heuristic (Algorithm 2).
	PolicyOpt Policy = iota
	// PolicyAlways is HELIX AM: materialize every intermediate result.
	PolicyAlways
	// PolicyNever is HELIX NM: never materialize intermediates.
	PolicyNever
	// PolicyOptMiniBatch adapts the streaming heuristic to mini-batch
	// stream processing (paper §5.3, "Mini-Batches"): materialization
	// decisions are made from the first batch processed end-to-end and
	// replayed for every subsequent batch, avoiding dataset fragmentation.
	PolicyOptMiniBatch
	// PolicyOptAmortized extends the streaming heuristic with the paper's
	// future-work user model (§5.3): materialization payoff is weighted
	// by the survey-derived probability that the operator survives the
	// next iteration's change. Set Options.Domain to select the change
	// distribution.
	PolicyOptAmortized
)

// Options configures a Session.
type Options struct {
	// Policy selects the materialization strategy. Default PolicyOpt.
	Policy Policy
	// StorageBudget caps materialized bytes for PolicyOpt; ≤0 means the
	// paper's default of 10 GB (§6.3).
	StorageBudget int64
	// OMPThreshold overrides Algorithm 2's load-cost multiplier for
	// PolicyOpt; 0 means the paper's value of 2. Exposed for the ablation
	// benchmark.
	OMPThreshold float64
	// Domain selects the change-probability distribution for
	// PolicyOptAmortized ("census", "nlp", "genomics", "mnist").
	Domain string
	// DisableReuse turns off cross-iteration reuse (the KeystoneML and
	// DeepDive baselines do not reuse automatically).
	DisableReuse bool
	// DisablePruning turns off program slicing (ablation).
	DisablePruning bool
	// SampleMemory enables heap sampling for Figure 10.
	SampleMemory bool
	// DPRSlowdown multiplies DPR operator cost (models DeepDive's
	// Python/shell preprocessing; §6.5.2). 0 or 1 disables.
	DPRSlowdown float64
	// LISlowdown multiplies L/I operator cost (models KeystoneML's
	// training-data caching miss; §6.5.2). 0 or 1 disables.
	LISlowdown float64
	// DiskBytesPerSec simulates a disk with the given throughput for
	// loads and writes; 0 uses real disk speed. The paper's environment
	// is 170 MB/s (§6.3).
	DiskBytesPerSec float64
	// SyncMaterialization disables write-behind materialization: results
	// are serialized and written inline on the worker goroutine that
	// computed them, putting the full materialization cost back on each
	// iteration's critical path. Default false (write-behind).
	SyncMaterialization bool
	// MatWriters sizes the store's background writer pool for write-behind
	// materialization; ≤0 uses the store default.
	MatWriters int
	// Parallelism bounds the execution scheduler's worker pool: at most
	// this many operators run concurrently, regardless of DAG width. ≤0
	// uses runtime.GOMAXPROCS(0).
	Parallelism int
	// PlanCache controls the iteration-over-iteration plan cache. The
	// zero value, PlanCacheOn, fingerprints every iteration's planning
	// inputs (DAG topology, chain signatures, the store's materialized
	// set, carried statistics, options) and reuses the previous
	// iteration's plan wholesale on a full match — skipping slicing,
	// ancestor-bitset construction, and the max-flow solve — or
	// re-solves only the changed components on a partial match.
	// PlanCacheOff forces a cold solve every iteration.
	PlanCache PlanCacheMode
	// CriticalPath selects the execution scheduler's ready-queue
	// ordering. The zero value, SchedCriticalPath, starts the ready node
	// with the longest projected downstream chain first (using the
	// plan's ProjectedTail values) so stragglers on unbalanced DAGs
	// claim workers early; it degrades to FIFO when no projections
	// exist. SchedFIFO forces pure arrival order.
	CriticalPath SchedMode
}

// PlanCacheMode toggles the session's plan cache (Options.PlanCache).
type PlanCacheMode int

const (
	// PlanCacheOn enables incremental planning (the default).
	PlanCacheOn PlanCacheMode = iota
	// PlanCacheOff re-solves the execution plan from scratch every
	// iteration (the pre-cache behavior).
	PlanCacheOff
)

// SchedMode selects the scheduler's ready-queue ordering
// (Options.CriticalPath).
type SchedMode = exec.SchedMode

// Scheduler orderings: critical-path priority (default) or pure FIFO.
const (
	SchedCriticalPath = exec.SchedCriticalPath
	SchedFIFO         = exec.SchedFIFO
)

// DefaultStorageBudget is the paper's experimental storage budget (§6.3).
const DefaultStorageBudget = 10 << 30

// Session executes successive iterations of a workflow, carrying the
// previous iteration's DAG and materialization store across runs — the
// workflow lifecycle of Figure 2. Sessions persist their change-tracking
// state (node signatures and operator statistics) next to the store, so
// reopening a session on the same directory resumes reuse across process
// restarts.
type Session struct {
	store   *store.Store
	engine  *exec.Engine
	dir     string
	prev    *core.DAG
	iter    int
	history []IterationRecord
}

// sessionStateFile holds the persisted snapshot within the store dir.
const sessionStateFile = "session.json"

// sessionState is the on-disk session record.
type sessionState struct {
	Iteration int           `json:"iteration"`
	Snapshot  core.Snapshot `json:"snapshot"`
}

// NewSession opens a session whose materialization store lives in dir.
// If the directory holds a previous session's state, change tracking
// resumes from it: unchanged operators can reuse results materialized
// before the restart.
func NewSession(dir string, options ...Options) (*Session, error) {
	var o Options
	if len(options) > 1 {
		return nil, fmt.Errorf("helix: at most one Options value")
	}
	if len(options) == 1 {
		o = options[0]
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	st.DiskBytesPerSec = o.DiskBytesPerSec
	st.Writers = o.MatWriters
	budget := o.StorageBudget
	if budget <= 0 {
		budget = DefaultStorageBudget
	}
	var pol opt.MatPolicy
	switch o.Policy {
	case PolicyOpt:
		somp := opt.NewStreamingOMP(budget)
		if o.OMPThreshold > 0 {
			somp.Threshold = o.OMPThreshold
		}
		pol = somp
	case PolicyAlways:
		pol = opt.AlwaysMat{}
	case PolicyNever:
		pol = opt.NeverMat{}
	case PolicyOptMiniBatch:
		somp := opt.NewStreamingOMP(budget)
		if o.OMPThreshold > 0 {
			somp.Threshold = o.OMPThreshold
		}
		pol = opt.NewMiniBatchOMP(somp)
	case PolicyOptAmortized:
		aomp := opt.NewAmortizedOMP(opt.SurveyChangeModel(o.Domain), budget)
		if o.OMPThreshold > 0 {
			aomp.Threshold = o.OMPThreshold
		}
		pol = aomp
	default:
		return nil, fmt.Errorf("helix: unknown policy %d", o.Policy)
	}
	eng := &exec.Engine{
		Store: st,
		Opts: exec.Options{
			Policy:              pol,
			DisableReuse:        o.DisableReuse,
			MaterializeOutputs:  o.Policy != PolicyNever,
			DPRSlowdown:         o.DPRSlowdown,
			LISlowdown:          o.LISlowdown,
			SampleMemory:        o.SampleMemory,
			DisablePruning:      o.DisablePruning,
			SyncMaterialization: o.SyncMaterialization,
			Parallelism:         o.Parallelism,
			Sched:               o.CriticalPath,
		},
	}
	if o.PlanCache != PlanCacheOff {
		// The config token pins every engine-level setting plan reuse must
		// be conditioned on: a session opened with a different policy,
		// budget, threshold, domain, or parallelism fingerprints
		// differently and can never reuse this configuration's decisions.
		eng.Cache = plan.NewCache(fmt.Sprintf(
			"policy=%d budget=%d threshold=%g domain=%q parallelism=%d",
			o.Policy, budget, o.OMPThreshold, o.Domain, o.Parallelism))
	}
	s := &Session{store: st, engine: eng, dir: dir}
	s.loadState()
	return s, nil
}

// PlanCacheStats reports the session's plan-cache consultation counters:
// full fingerprint hits (plans reused with zero solves), partial hits
// (only dirty components re-solved), and misses (cold solves). All zero
// when the cache is disabled.
func (s *Session) PlanCacheStats() plan.CacheStats {
	if s.engine.Cache == nil {
		return plan.CacheStats{}
	}
	return s.engine.Cache.Stats()
}

// loadState restores persisted change-tracking state; absence or
// corruption silently degrades to a fresh session (everything original).
// Stale saveState temp files (a process that crashed between CreateTemp
// and Rename) are swept here so they cannot accumulate across restarts.
func (s *Session) loadState() {
	if stale, err := filepath.Glob(filepath.Join(s.dir, sessionStateFile+".tmp-*")); err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}
	data, err := os.ReadFile(filepath.Join(s.dir, sessionStateFile))
	if err != nil {
		return
	}
	var st sessionState
	if err := json.Unmarshal(data, &st); err != nil {
		return
	}
	s.iter = st.Iteration
	s.prev = core.FromSnapshot(st.Snapshot)
}

// saveState persists change-tracking state for restart resumption. A
// failed write is non-fatal: the next process simply recomputes. The
// write is atomic — temp file then rename — so a crash mid-write can
// never leave a truncated session.json behind; the previous snapshot (or
// none) survives intact and loadState's corruption handling is reserved
// for genuinely external damage.
func (s *Session) saveState() {
	if s.prev == nil {
		return
	}
	st := sessionState{Iteration: s.iter, Snapshot: s.prev.Snapshot()}
	data, err := json.Marshal(st)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, sessionStateFile+".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	// CreateTemp opens 0600; restore the file's historical 0644 so external
	// tooling inspecting the session directory keeps read access.
	merr := tmp.Chmod(0o644)
	// Sync before the rename: POSIX does not order data writes against the
	// rename, so without it a system crash could make the new name durable
	// while its contents are not — the truncated-file outcome this whole
	// dance exists to rule out.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || merr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, sessionStateFile)); err != nil {
		os.Remove(tmp.Name())
	}
}

// Iteration returns the index of the next iteration to run (0-based).
func (s *Session) Iteration() int { return s.iter }

// StorageBytes reports the store's current on-disk usage (Figure 9c,d).
func (s *Session) StorageBytes() int64 { return s.store.UsedBytes() }

// Plan compiles wf and returns the execution plan Run would carry out for
// it right now — per-node states, costs, originality, liveness, the
// projected run time T(W,s) of Equation 1, and a rationale for every
// decision — without executing anything. Planning is read-only with
// respect to the session: the iteration counter, the previous iteration's
// DAG, and the materialization store are left untouched, so Plan may be
// called any number of times (and interleaved with Run) purely for
// inspection. Render the result with Plan.Explain() or Workflow.PlanDOT.
func (s *Session) Plan(wf *Workflow) (*Plan, error) {
	prog, err := wf.Compile()
	if err != nil {
		return nil, err
	}
	return s.engine.Plan(prog.DAG, s.prev, s.iter)
}

// Run compiles and executes one iteration of wf, then advances the
// session: the executed DAG becomes the previous iteration for change
// tracking on the next Run (paper §2.2: "The updated workflow W_{t+1}
// fed back to HELIX marks the beginning of a new iteration").
func (s *Session) Run(ctx context.Context, wf *Workflow) (*Result, error) {
	prog, err := wf.Compile()
	if err != nil {
		return nil, err
	}
	started := time.Now()
	res, err := s.engine.Run(ctx, prog, s.prev, s.iter)
	if err != nil {
		return nil, err
	}
	// Write-behind barrier: the engine already drains its own iteration's
	// writes, but the explicit Flush here is the documented contract — no
	// materialization accepted by run N may be invisible to run N+1, and
	// the manifest on disk reflects everything this iteration stored.
	// The error is discarded on purpose: an individual write failure
	// degrades to "not materialized" (identically in sync and async
	// modes), it never fails the iteration — the computed outputs are
	// already in hand.
	_ = s.store.Flush()
	s.recordHistory(wf, res, started, changedOperators(prog.DAG, s.prev))
	s.prev = prog.DAG
	s.iter++
	s.saveState()
	return res, nil
}

// RunTimed is Run plus a convenience wall-clock duration, for harness
// code that aggregates cumulative run time (Figure 5).
func (s *Session) RunTimed(ctx context.Context, wf *Workflow) (*Result, time.Duration, error) {
	start := time.Now()
	res, err := s.Run(ctx, wf)
	return res, time.Since(start), err
}

// Close flushes any write-behind materializations still in flight, stops
// the store's writer pool, and persists the session's change-tracking
// state. The session and its store directory remain readable afterwards;
// a session reopened on the same directory resumes reuse. Always call
// Close (directly or deferred) when done with a session — otherwise
// background writes may still be in flight when the process exits.
func (s *Session) Close() error {
	s.saveState()
	return s.store.Close()
}
