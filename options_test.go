package helix_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"helix"
	"helix/internal/core"
	"helix/internal/sim"
	"helix/internal/workloads"
)

func init() {
	// Idempotent with the package-helix test init: identical
	// type-and-name registrations are no-ops.
	helix.RegisterType("")
	helix.RegisterType(0)
	helix.RegisterType(0.0)
	helix.RegisterType([]string(nil))
}

// optWorkflow builds the session-test pipeline (sleepy DPR→L/I→PPR) for
// the external test package; calls counts operator executions.
func optWorkflow(calls *atomic.Int64, learnerParams string) *helix.Workflow {
	wf := helix.New("opt-test")
	delay := 10 * time.Millisecond
	src := wf.Source("data", "v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		calls.Add(1)
		time.Sleep(delay)
		return []string{"a", "b", "c"}, nil
	})
	rows := wf.Scanner("rows", "csv", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		calls.Add(1)
		time.Sleep(delay)
		return len(in[0].([]string)), nil
	}, src)
	model := wf.Learner("model", learnerParams, func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		calls.Add(1)
		time.Sleep(delay)
		return in[0].(int) * 100, nil
	}, rows)
	wf.Reducer("checked", "acc", func(ctx context.Context, in []helix.Value) (Value, error) {
		calls.Add(1)
		time.Sleep(delay)
		return float64(in[0].(int)), nil
	}, model).IsOutput()
	return wf
}

// Value aliases helix.Value for brevity in this file's operator bodies.
type Value = helix.Value

// TestRunScopedOverridesForceResolveAndRevertHits is the acceptance
// scenario: one session runs iteration N under the baseline PolicyOpt,
// iteration N+1 under run-scoped WithPolicy(PolicyAlways) plus a
// parallelism override — without reopening — and the plan-cache stats
// must show the configuration change forced a re-solve; reverting the
// override must restore a full fingerprint hit against the baseline
// configuration's cached plan.
func TestRunScopedOverridesForceResolveAndRevertHits(t *testing.T) {
	workloads.RegisterAll()
	wl, err := sim.NewWorkload("census", workloads.Scale{Rows: 1, CostFactor: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// Iterations 0–2 under the baseline: 0 materializes, 1 settles the
	// store, 2 is the steady-state full hit.
	var res *helix.Result
	for i := 0; i < 3; i++ {
		if res, err = sess.Run(ctx, wl.Build()); err != nil {
			t.Fatal(err)
		}
	}
	if res.Plan.Cache != helix.PlanCacheHit {
		t.Fatalf("steady-state baseline outcome %v, want hit", res.Plan.Cache)
	}
	baselineValues := res.Values
	before := sess.PlanCacheStats()

	// Iteration 3: run-scoped policy + parallelism override. The config
	// token differs, so neither a full nor a partial reuse of the
	// baseline's plan is permitted — the cache must record a miss.
	over, err := sess.Run(ctx, wl.Build(),
		helix.WithPolicy(helix.PolicyAlways), helix.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if over.Plan.Cache != helix.PlanCacheCold {
		t.Fatalf("override run outcome %v, want cold (config change must force a re-solve)", over.Plan.Cache)
	}
	mid := sess.PlanCacheStats()
	if mid.Misses != before.Misses+1 {
		t.Fatalf("override run: misses %d → %d, want +1 (stats %+v)", before.Misses, mid.Misses, mid)
	}
	if mid.Hits != before.Hits {
		t.Fatalf("override run produced a cache hit across configurations: %+v", mid)
	}

	// Iteration 4: the override is gone, so the baseline configuration's
	// cached plan applies again — a full fingerprint hit.
	rev, err := sess.Run(ctx, wl.Build())
	if err != nil {
		t.Fatal(err)
	}
	if rev.Plan.Cache != helix.PlanCacheHit {
		t.Fatalf("reverted run outcome %v, want full hit", rev.Plan.Cache)
	}
	if after := sess.PlanCacheStats(); after.Hits != mid.Hits+1 {
		t.Fatalf("reverted run: hits %d → %d, want +1 (stats %+v)", mid.Hits, after.Hits, after)
	}
	// Overrides must not change results (Theorem 1 across configurations).
	for name, want := range baselineValues {
		if rev.Values[name] == nil {
			t.Fatalf("output %s missing after override round-trip (want %v)", name, want)
		}
	}
}

// TestRunScopedOverrideChangesMaterialization: a run-scoped
// WithPolicy(PolicyNever) must govern the run's materialization
// decisions, not only its plan — nothing may be written under it.
func TestRunScopedOverrideChangesMaterialization(t *testing.T) {
	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var c atomic.Int64
	res, err := sess.Run(context.Background(), optWorkflow(&c, "LR reg=0.1"),
		helix.WithPolicy(helix.PolicyNever))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["checked"] != 300.0 {
		t.Fatalf("output = %v", res.Values["checked"])
	}
	if sess.StorageBytes() != 0 {
		t.Fatalf("run under PolicyNever override stored %d bytes", sess.StorageBytes())
	}
}

// TestSessionScopedOptionRejectedAtRunScope: options that configure the
// store or the plan cache are session-scoped; Run and Plan must reject
// them with ErrSessionOption instead of silently ignoring them.
func TestSessionScopedOptionRejectedAtRunScope(t *testing.T) {
	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var c atomic.Int64
	wf := optWorkflow(&c, "LR reg=0.1")
	for _, opt := range []helix.Option{
		helix.WithPlanCache(helix.PlanCacheOff),
		helix.WithMatWriters(2),
		helix.WithDiskThroughput(1e6),
		helix.WithOptions(helix.Options{}),
	} {
		if _, err := sess.Run(context.Background(), wf, opt); !errors.Is(err, helix.ErrSessionOption) {
			t.Fatalf("Run with session-scoped option: err = %v, want ErrSessionOption", err)
		}
		if _, err := sess.Plan(wf, opt); !errors.Is(err, helix.ErrSessionOption) {
			t.Fatalf("Plan with session-scoped option: err = %v, want ErrSessionOption", err)
		}
	}
	if c.Load() != 0 {
		t.Fatal("rejected run executed operators")
	}
	if sess.Iteration() != 0 {
		t.Fatal("rejected run advanced the iteration counter")
	}
}

// TestWithWorkerClass: compute resizes the compute pool, io the load
// pool, anything else is rejected at option-application time with a
// message naming the class.
func TestWithWorkerClass(t *testing.T) {
	if _, err := helix.Open(t.TempDir(), helix.WithWorkerClass("gpu", 2)); err == nil ||
		!strings.Contains(err.Error(), "gpu") {
		t.Fatalf("unknown worker class: err = %v", err)
	}
	sess, err := helix.Open(t.TempDir(),
		helix.WithWorkerClass(helix.WorkerCompute, 2),
		helix.WithWorkerClass(helix.WorkerIO, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var c atomic.Int64
	if _, err := sess.Run(context.Background(), optWorkflow(&c, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	var c2 atomic.Int64
	if _, err := sess.Run(context.Background(), optWorkflow(&c2, "LR reg=0.1"),
		helix.WithWorkerClass("tpu", 1)); err == nil || !strings.Contains(err.Error(), "tpu") {
		t.Fatalf("unknown run-scoped worker class: err = %v", err)
	}
}

// TestOptionsShimEquivalence: the deprecated Options-struct constructor
// must behave identically to the functional-option path — including
// resuming a session fixture the new path created.
func TestOptionsShimEquivalence(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Build the fixture with the new path.
	s1, err := helix.Open(dir,
		helix.WithPolicy(helix.PolicyAlways), helix.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	var c1 atomic.Int64
	res1, err := s1.Run(ctx, optWorkflow(&c1, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same directory through the shim with the equivalent
	// struct: change tracking must resume (zero recomputation) and the
	// outputs must match.
	s2, err := helix.NewSession(dir, helix.Options{Policy: helix.PolicyAlways, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var c2 atomic.Int64
	res2, err := s2.Run(ctx, optWorkflow(&c2, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Load() != 0 {
		t.Fatalf("shim session recomputed %d operators on the fixture", c2.Load())
	}
	if res2.Values["checked"] != res1.Values["checked"] {
		t.Fatalf("shim output %v != new-path output %v", res2.Values["checked"], res1.Values["checked"])
	}
	if res2.StateCounts[core.StateCompute] != 0 {
		t.Fatalf("shim session computed %d nodes, want full reuse", res2.StateCounts[core.StateCompute])
	}

	// And a fresh shim session behaves like a fresh new-path session on
	// the same configuration (same outputs, same storage decision).
	s3, err := helix.NewSession(t.TempDir(), helix.Options{Policy: helix.PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	var c3 atomic.Int64
	res3, err := s3.Run(ctx, optWorkflow(&c3, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res3.Values["checked"] != 300.0 || s3.StorageBytes() != 0 {
		t.Fatalf("shim PolicyNever: output %v storage %d", res3.Values["checked"], s3.StorageBytes())
	}
}
