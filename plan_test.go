package helix_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"helix"
	"helix/internal/core"
	"helix/internal/plan"
	"helix/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// censusProgramDAG compiles the census workflow and returns its DAG with
// signatures computed.
func censusProgramDAG(t *testing.T) *core.DAG {
	t.Helper()
	wf := workloads.NewCensus(workloads.Scale{Rows: 1, CostFactor: 40}, 1).Build()
	prog, err := wf.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prog.DAG.ComputeSignatures()
	return prog.DAG
}

// deterministicView is a plan.MatView with fixed sizes and the paper's
// 170 MB/s disk, so projected load costs are reproducible.
type deterministicView struct{ sizes map[string]int64 }

func (v deterministicView) Lookup(key string) (int64, bool) {
	s, ok := v.sizes[key]
	return s, ok
}

func (v deterministicView) EstimateLoad(size int64) time.Duration {
	return time.Duration(float64(size) / 170e6 * float64(time.Second))
}

// TestPlanExplainGoldenCensus pins Plan.Explain()'s decision table for
// the census workflow against a golden file. The scenario is fully
// deterministic and models an L/I iteration: the previous iteration's DAG
// is an equivalent census compile with synthetic per-node statistics
// (ID-derived compute times), every DPR result is materialized (ID-sized,
// loaded at the paper's 170 MB/s), and the learner's parameters changed —
// so the plan mixes originals that must compute, loads that free
// ancestors for pruning, a sliced-away dead branch, and a mandatory
// output materialization, with every printed cost reproducible.
// Regenerate with `go test -run PlanExplainGolden -update .` after
// intentional format changes.
func TestPlanExplainGoldenCensus(t *testing.T) {
	d := censusProgramDAG(t)

	prev := censusProgramDAG(t)
	for i, n := range prev.Nodes() {
		n.Metrics = core.Metrics{
			Compute: time.Duration(i+1) * 100 * time.Millisecond,
			Known:   true,
		}
	}

	sizes := make(map[string]int64)
	for i, n := range d.Nodes() {
		if n.Component == core.DPR {
			sizes[n.ChainSignature()] = int64(i+1) << 20
		}
	}
	// The L/I mutation: this iteration retunes the learner, deprecating it
	// and its downstream (the planner recomputes signatures itself).
	d.Node("predictions").OpSignature += "|regParam=0.01"

	planner := &plan.Planner{
		View: deterministicView{sizes: sizes},
		Opts: plan.Options{MaterializeOutputs: true},
	}
	p, err := planner.Plan(d, prev, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Explain()

	golden := filepath.Join("testdata", "census_explain.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Plan.Explain() drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSessionPlanLeavesSessionUntouched: Session.Plan is pure inspection.
// Planning a changed workflow must not advance the iteration counter,
// must not replace the previous iteration's DAG, and must not purge or
// otherwise mutate the store — the next Run must still see full reuse.
func TestSessionPlanLeavesSessionUntouched(t *testing.T) {
	dir := t.TempDir()
	sess, err := helix.NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	build := func(learnerParams string) *helix.Workflow {
		wf := helix.New("tiny")
		src := wf.Source("data", "v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			time.Sleep(10 * time.Millisecond)
			return []string{"a", "b", "c"}, nil
		})
		ext := wf.Extractor("count", "len", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			time.Sleep(10 * time.Millisecond)
			return len(in[0].([]string)), nil
		}, src)
		wf.Reducer("final", learnerParams, func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			time.Sleep(10 * time.Millisecond)
			return in[0].(int) * 2, nil
		}, ext).IsOutput()
		return wf
	}

	if _, err := sess.Run(ctx, build("v1")); err != nil {
		t.Fatal(err)
	}
	iterBefore := sess.Iteration()
	storageBefore := sess.StorageBytes()
	stateBefore, err := os.ReadFile(filepath.Join(dir, "session.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Plan a CHANGED workflow several times: the changed reducer must be
	// planned for recomputation, but nothing about the session may move.
	for i := 0; i < 3; i++ {
		p, err := sess.Plan(build("v2"))
		if err != nil {
			t.Fatal(err)
		}
		np := p.ByName("final")
		if np == nil || !np.Original || np.State != helix.StateCompute {
			t.Fatalf("changed output plan = %+v, want original compute", np)
		}
		if p.Iteration != iterBefore {
			t.Fatalf("plan iteration %d, want session's %d", p.Iteration, iterBefore)
		}
	}

	if got := sess.Iteration(); got != iterBefore {
		t.Fatalf("Plan advanced iteration: %d → %d", iterBefore, got)
	}
	if got := sess.StorageBytes(); got != storageBefore {
		t.Fatalf("Plan changed store usage: %d → %d bytes", storageBefore, got)
	}
	stateAfter, err := os.ReadFile(filepath.Join(dir, "session.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(stateBefore) != string(stateAfter) {
		t.Fatal("Plan rewrote persisted session state")
	}

	// The decisive check: rerunning the ORIGINAL workflow still reuses
	// everything, so Plan did not replace the prev DAG or purge results.
	res, err := sess.Run(ctx, build("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.StateCounts[helix.StateCompute] != 0 {
		t.Fatalf("rerun after Plan recomputed %d nodes: planning mutated session state",
			res.StateCounts[helix.StateCompute])
	}
}

// TestSessionPlanMatchesExecutedPlan: the plan Session.Plan returns for a
// workflow agrees with the plan Run executes immediately afterwards.
func TestSessionPlanMatchesExecutedPlan(t *testing.T) {
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	wf := workloads.NewCensus(workloads.Scale{Rows: 1, CostFactor: 40}, 1).Build()
	planned, err := sess.Plan(wf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(ctx, wf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("Result.Plan not populated")
	}
	for _, np := range planned.Nodes {
		got := res.Plan.ByName(np.Node.Name)
		if got == nil || got.State != np.State {
			t.Fatalf("node %s: planned %v, executed %v", np.Node.Name, np.State, got)
		}
		if rep, ok := res.Nodes[np.Node.Name]; !ok || rep.State != np.State {
			t.Fatalf("node %s: realized state %v != planned %v", np.Node.Name, rep.State, np.State)
		}
	}
}

// TestPlanDOTGoldenCensus pins Workflow.PlanDOT — the last untested
// render path — against a golden file, under the same fully
// deterministic L/I-iteration scenario as TestPlanExplainGoldenCensus:
// synthetic carried statistics, ID-sized DPR materializations loaded at
// the paper's 170 MB/s, and a retuned learner. The golden output pins
// the state/C(n) labels, the prune/load styling, the mandatory-mat drum
// marker, and every rationale tooltip. Regenerate with
// `go test -run PlanDOTGolden -update .` after intentional format
// changes.
func TestPlanDOTGoldenCensus(t *testing.T) {
	wf := workloads.NewCensus(workloads.Scale{Rows: 1, CostFactor: 40}, 1).Build()
	prog, err := wf.Compile()
	if err != nil {
		t.Fatal(err)
	}
	d := prog.DAG
	d.ComputeSignatures()

	prev := censusProgramDAG(t)
	for i, n := range prev.Nodes() {
		n.Metrics = core.Metrics{
			Compute: time.Duration(i+1) * 100 * time.Millisecond,
			Known:   true,
		}
	}
	sizes := make(map[string]int64)
	for i, n := range d.Nodes() {
		if n.Component == core.DPR {
			sizes[n.ChainSignature()] = int64(i+1) << 20
		}
	}
	d.Node("predictions").OpSignature += "|regParam=0.01"

	planner := &plan.Planner{
		View: deterministicView{sizes: sizes},
		Opts: plan.Options{MaterializeOutputs: true},
	}
	p, err := planner.Plan(d, prev, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wf.PlanDOT(p)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "census_plandot.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Workflow.PlanDOT drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPlanDOTAnnotations: PlanDOT renders plan states and rationale.
func TestPlanDOTAnnotations(t *testing.T) {
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	wf := workloads.NewCensus(workloads.Scale{Rows: 1, CostFactor: 40}, 1).Build()
	p, err := sess.Plan(wf)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := wf.PlanDOT(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "Sc", "C(n)=", "tooltip=", "⛁ mandatory"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("PlanDOT missing %q:\n%s", want, dot)
		}
	}
}
