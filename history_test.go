package helix

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// topoWorkflow is buildWorkflow plus an extra extractor spliced between
// scanner and learner — a topology change relative to buildWorkflow.
func topoWorkflow(calls *atomic.Int64) *Workflow {
	wf := New("sess-test")
	src := wf.Source("data", "v1", func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		return []string{"a", "b", "c"}, nil
	})
	rows := wf.Scanner("rows", "csv", func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		return len(in[0].([]string)), nil
	}, src)
	feat := wf.Extractor("feat", "squared", func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		return in[0].(int) * in[0].(int), nil
	}, rows)
	model := wf.Learner("model", "LR reg=0.1", func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		return in[0].(int) * 100, nil
	}, feat)
	wf.Reducer("checked", "acc", func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		return float64(in[0].(int)), nil
	}, model).IsOutput()
	return wf
}

// TestHistoryRecordContents pins every IterationRecord field a run
// derives: state counts, materialization time, storage, timing.
func TestHistoryRecordContents(t *testing.T) {
	sess, err := Open(t.TempDir(), WithPolicy(PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	before := time.Now()
	var c atomic.Int64
	res, err := sess.Run(context.Background(), buildWorkflow(&c, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	h := sess.History()
	if len(h) != 1 {
		t.Fatalf("history length = %d", len(h))
	}
	rec := h[0]
	if rec.Iteration != 0 || rec.WorkflowName != "sess-test" {
		t.Fatalf("record identity wrong: %+v", rec)
	}
	if rec.Started.Before(before) || rec.Started.After(time.Now()) {
		t.Fatalf("Started %v outside the run window", rec.Started)
	}
	if rec.Wall <= 0 || rec.Wall != res.Wall {
		t.Fatalf("Wall %v, result %v", rec.Wall, res.Wall)
	}
	if rec.States[StateCompute] != res.StateCounts[StateCompute] ||
		rec.States[StateLoad] != res.StateCounts[StateLoad] ||
		rec.States[StatePrune] != res.StateCounts[StatePrune] {
		t.Fatalf("States %v != result counts %v", rec.States, res.StateCounts)
	}
	if rec.MatTime != res.MatTime {
		t.Fatalf("MatTime %v, result %v", rec.MatTime, res.MatTime)
	}
	if rec.StorageBytes != res.StorageBytes || rec.StorageBytes == 0 {
		t.Fatalf("StorageBytes %d, result %d (PolicyAlways must store)", rec.StorageBytes, res.StorageBytes)
	}
}

// TestHistoryChangedOperators covers the three iteration shapes: an
// edit (learner params), a no-op rerun, and a topology change (an
// operator spliced into the middle of the chain).
func TestHistoryChangedOperators(t *testing.T) {
	sess, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()
	var c atomic.Int64

	// Iteration 0: everything is original.
	if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	// Iteration 1: edit — the learner and its descendant change.
	if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.5")); err != nil {
		t.Fatal(err)
	}
	// Iteration 2: no-op rerun — nothing changes.
	if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.5")); err != nil {
		t.Fatal(err)
	}
	// Iteration 3: topology change — "feat" appears, and everything
	// downstream of it (model, checked) becomes original. The learner
	// params revert to reg=0.1 as part of the new chain.
	if _, err := sess.Run(ctx, topoWorkflow(&c)); err != nil {
		t.Fatal(err)
	}

	h := sess.History()
	if len(h) != 4 {
		t.Fatalf("history length = %d", len(h))
	}
	if got := h[0].Changed; len(got) != 4 {
		t.Fatalf("iteration 0 changed = %v, want all 4", got)
	}
	if got := h[1].Changed; len(got) != 2 || got[0] != "checked" || got[1] != "model" {
		t.Fatalf("edit iteration changed = %v, want [checked model]", got)
	}
	if got := h[2].Changed; len(got) != 0 {
		t.Fatalf("no-op iteration changed = %v, want none", got)
	}
	if got := h[3].Changed; len(got) != 3 || got[0] != "checked" || got[1] != "feat" || got[2] != "model" {
		t.Fatalf("topology iteration changed = %v, want [checked feat model]", got)
	}
}

// TestHistorySurvivesReopen: history is part of the persisted session
// state — a session reopened on the same directory sees the records of
// iterations run before the restart and appends after them.
func TestHistorySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sess, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var c atomic.Int64
	if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.5")); err != nil {
		t.Fatal(err)
	}
	want := sess.History()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	got := resumed.History()
	if len(got) != len(want) {
		t.Fatalf("reopened history length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Iteration != want[i].Iteration ||
			got[i].WorkflowName != want[i].WorkflowName ||
			len(got[i].Changed) != len(want[i].Changed) ||
			got[i].Wall != want[i].Wall ||
			got[i].States[StateCompute] != want[i].States[StateCompute] {
			t.Fatalf("record %d differs after reopen:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}

	// New iterations append after the restored records.
	if _, err := resumed.Run(ctx, buildWorkflow(&c, "LR reg=0.5")); err != nil {
		t.Fatal(err)
	}
	h := resumed.History()
	if len(h) != 3 || h[2].Iteration != 2 {
		t.Fatalf("post-reopen history = %d records, last iteration %d; want 3 and 2", len(h), h[len(h)-1].Iteration)
	}
}
