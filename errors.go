package helix

import (
	"errors"

	"helix/internal/exec"
)

// The package's error taxonomy. Every error returned by the public API
// either is one of these sentinels or wraps one, so callers classify
// failures with errors.Is / errors.As instead of matching message text:
//
//	if errors.Is(err, helix.ErrBadWorkflow) { ... }   // fix the declaration
//	var ne *helix.NodeError
//	if errors.As(err, &ne) { log.Printf("operator %s failed: %v", ne.Op, ne.Err) }
//
// Wrapped sentinels keep their historical message text: tagging an error
// adds machine-readable identity without changing what users see.
var (
	// ErrBadWorkflow tags workflow declaration and compilation failures:
	// empty or duplicate operator names, nil functions or inputs,
	// cross-workflow wiring, and dependency cycles. Returned (wrapped,
	// with the specific cause in the message) by Workflow.Compile and by
	// every Session method that compiles a workflow.
	ErrBadWorkflow = errors.New("helix: invalid workflow")
	// ErrPolicyUnknown tags configuration with a Policy value outside the
	// declared constants, from Open, the NewSession shim, or a run-scoped
	// WithPolicy override.
	ErrPolicyUnknown = errors.New("helix: unknown materialization policy")
	// ErrSessionClosed is returned by Run and Plan after Close.
	ErrSessionClosed = errors.New("helix: session is closed")
	// ErrConcurrentRun is returned by Run when another Run on the same
	// session has not yet returned. Runs are rejected, not queued: an
	// iteration's change tracking is defined against the previous
	// iteration, so interleaving two would silently corrupt both.
	ErrConcurrentRun = errors.New("helix: Run already in progress on this session")
	// ErrSessionOption tags a session-scoped option (storage and plan-
	// cache configuration) passed to the run scope of Run or Plan.
	ErrSessionOption = errors.New("helix: option is session-scoped")
	// ErrSharedConfig tags a session opened against a SharedStore with
	// store-level settings (disk throughput, codec, writer-pool size)
	// conflicting with those the store was configured with by its first
	// session. Store-level configuration belongs to the shared store, not
	// to any one attaching session.
	ErrSharedConfig = errors.New("helix: conflicting shared-store configuration")
	// ErrBadConfig tags malformed session construction: conflicting or
	// over-supplied configuration values, such as passing more than one
	// legacy Options struct to NewSession.
	ErrBadConfig = errors.New("helix: invalid configuration")
)

// NodeError reports the failure of one operator during Run. Retrieve it
// with errors.As to learn which operator failed (Op) and why (Err, which
// unwraps further — e.g. to context.Canceled when the run was canceled).
type NodeError = exec.NodeError

// taggedError ties a concrete error to one of the taxonomy's sentinels
// without altering its message: Error() and Unwrap() delegate to the
// cause, while Is() answers for the sentinel, so errors.Is finds both the
// tag and anything the cause itself wraps.
type taggedError struct {
	tag error
	err error
}

func (e *taggedError) Error() string { return e.err.Error() }

func (e *taggedError) Unwrap() error { return e.err }

func (e *taggedError) Is(target error) bool { return target == e.tag }

// tagged wraps err so errors.Is(err, tag) holds, preserving the message.
func tagged(tag, err error) error {
	if err == nil || errors.Is(err, tag) {
		return err
	}
	return &taggedError{tag: tag, err: err}
}
