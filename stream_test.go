package helix

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"helix/internal/store"
)

// streamWorkflow builds a pipeline with a fusible chain of three
// streamable operators between batch endpoints:
//
//	lines (Source) → parse (FlatMapRows) → scale (MapRows)
//	              → keep (FilterRows) → total (Reducer, output)
func streamWorkflow() *Workflow {
	wf := New("stream-test")
	lines := wf.Source("lines", "v1", func(ctx context.Context, in []Value) (Value, error) {
		return []string{"1 2 3", "4 5", "", "6 7 8 9"}, nil
	})
	parse := FlatMapRows(wf, "parse", "fields", func(line string) []float64 {
		// Per-row sleep so the chain costs enough that loading its tail
		// beats recomputing it (the reuse-across-iterations test).
		time.Sleep(2 * time.Millisecond)
		var out []float64
		for _, f := range strings.Fields(line) {
			v, _ := strconv.ParseFloat(f, 64)
			out = append(out, v)
		}
		return out
	}, lines)
	scale := MapRows(wf, "scale", "x10", func(v float64) float64 { return v * 10 }, parse)
	keep := FilterRows(wf, "keep", ">20", func(v float64) bool { return v > 20 }, scale)
	wf.Reducer("total", "sum", func(ctx context.Context, in []Value) (Value, error) {
		var sum float64
		for _, v := range in[0].([]float64) {
			sum += v
		}
		return sum, nil
	}, keep).IsOutput()
	return wf
}

// 30+40+50+60+70+80+90 (10 and 20 filtered out).
const streamWant = 420.0

func TestStreamingFusesChainAndMatchesBatch(t *testing.T) {
	sess, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	p, err := sess.Plan(streamWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fused) != 1 {
		t.Fatalf("Fused = %v, want one group", p.Fused)
	}
	if got := len(p.Fused[0]); got != 3 {
		t.Fatalf("fused group has %d members, want 3 (parse, scale, keep)", got)
	}
	for _, i := range p.Fused[0] {
		switch name := p.Nodes[i].Node.Name; name {
		case "parse", "scale", "keep":
		default:
			t.Fatalf("unexpected fused member %q", name)
		}
	}
	if len(p.FusedSigs) != 1 || p.FusedSigs[0] == "" {
		t.Fatalf("FusedSigs = %v, want one merged signature", p.FusedSigs)
	}
	if !strings.Contains(p.Explain(), "[fused #0") {
		t.Fatalf("Explain does not render fusion:\n%s", p.Explain())
	}

	var fusedEvents int
	res, err := sess.Run(context.Background(), streamWorkflow(),
		WithObserver(func(ev RunEvent) {
			if ne, ok := ev.(NodeEvent); ok && ne.Fused {
				fusedEvents++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["total"] != streamWant {
		t.Fatalf("streaming total = %v, want %v", res.Values["total"], streamWant)
	}
	// 3 members × (started + retired).
	if fusedEvents != 6 {
		t.Fatalf("saw %d fused node events, want 6", fusedEvents)
	}

	// The same workflow with streaming disabled must produce
	// byte-identical output under canonical encoding.
	off, err := Open(t.TempDir(), WithStreaming(false))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	pOff, err := off.Plan(streamWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	if len(pOff.Fused) != 0 {
		t.Fatalf("streaming-off plan fused %v, want none", pOff.Fused)
	}
	resOff, err := off.Run(context.Background(), streamWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range res.Values {
		a, err := store.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := store.Encode(resOff.Values[name])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("output %q differs between streaming on and off", name)
		}
	}
}

// Interior values of a fused run are never built, but the run's tail
// keeps its own chain signature — so cross-iteration reuse loads the
// tail instead of recomputing the chain, exactly as batch execution
// would.
func TestStreamingTailReusedAcrossIterations(t *testing.T) {
	sess, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()
	if _, err := sess.Run(ctx, streamWorkflow()); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(ctx, streamWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["total"] != streamWant {
		t.Fatalf("total = %v, want %v", res.Values["total"], streamWant)
	}
	// Iteration 2: nothing changed, so no live node should recompute the
	// fused chain — its members are pruned or loaded.
	if got := res.Nodes["scale"].State.String(); got == "Sc" {
		t.Fatalf("fused interior recomputed on unchanged iteration (state %s)", got)
	}
}

// A run-scoped WithStreaming override flips execution mode for one call
// and is plan-cache safe: each mode keeps its own fingerprint.
func TestStreamingRunScopedOverride(t *testing.T) {
	sess, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()
	resOff, err := sess.Run(ctx, streamWorkflow(), WithStreaming(false))
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := sess.Run(ctx, streamWorkflow(), WithStreaming(true))
	if err != nil {
		t.Fatal(err)
	}
	if resOff.Values["total"] != streamWant || resOn.Values["total"] != streamWant {
		t.Fatalf("totals = %v / %v, want %v", resOff.Values["total"], resOn.Values["total"], streamWant)
	}
}

// Streamable operators run correctly as plain batch operators when they
// cannot fuse — here a single streamable node between batch neighbors
// (no chain of ≥2), exercising RunRowOp.
func TestSingleStreamableNodeRunsUnfused(t *testing.T) {
	wf := New("solo")
	src := wf.Source("src", "v1", func(ctx context.Context, in []Value) (Value, error) {
		return []float64{1, 2, 3}, nil
	})
	MapRows(wf, "dbl", "x2", func(v float64) float64 { return v * 2 }, src).IsOutput()
	sess, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p, err := sess.Plan(wf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fused) != 0 {
		t.Fatalf("single node fused: %v", p.Fused)
	}
	res, err := sess.Run(context.Background(), wf)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Values["dbl"].([]float64)
	if len(got) != 3 || got[0] != 2 || got[2] != 6 {
		t.Fatalf("dbl = %v", got)
	}
}
