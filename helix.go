// Package helix is a Go reproduction of HELIX (Xin et al., PVLDB 12(4),
// 2018): a declarative machine-learning workflow system that optimizes
// execution across iterations — intelligently reusing materialized
// intermediate results, or recomputing them, as appropriate.
//
// A workflow is declared once through the Workflow builder (the Go
// analogue of the paper's HML DSL, §3): data sources, scanners,
// extractors, synthesizers, learners and reducers, wired by input/output
// relationships into a DAG. A Session then executes the workflow; on
// every subsequent run it compares the new DAG against the previous
// iteration's (operator-level change tracking, §4.2), computes the
// optimal mix of loading, computing and pruning per node by reduction to
// MAX-FLOW (OPT-EXEC-PLAN, §5.2), and while running decides which fresh
// intermediates to materialize for the benefit of future iterations
// (OPT-MAT-PLAN streaming heuristic, §5.3).
//
// Basic use:
//
//	wf := helix.New("census")
//	rows := wf.Scanner("rows", "csv", parse, wf.Source("data", "v1", read))
//	ext := wf.Extractor("age", "col=age", extractAge, rows)
//	income := wf.Synthesizer("income", "label=target", assemble, ext)
//	pred := wf.Learner("incPred", "LR reg=0.1", train, income)
//	acc := wf.Reducer("checked", "accuracy", evaluate, pred)
//	acc.IsOutput()
//
//	sess, _ := helix.Open(dir)
//	res, _ := sess.Run(ctx, wf)     // iteration 0: full run
//	// ... modify the workflow declaration ...
//	res, _ = sess.Run(ctx, wf2)     // iteration 1: reuses unchanged work
//
// Open accepts functional options (WithPolicy, WithParallelism,
// WithObserver, …) that set the session baseline; Run and Plan accept
// the same options as run-scoped overrides for one call, and failures
// are classified by the package's typed errors (ErrBadWorkflow,
// NodeError, …).
//
// helixlint (errtaxonomy) holds the package to that contract: every
// error return is a taxonomy sentinel, wraps one (tagged / %w), or
// carries a typed *NodeError — never an anonymous fmt.Errorf.
//
//lint:errtaxonomy
package helix

import (
	"helix/internal/core"
	"helix/internal/plan"
	"helix/internal/store"
)

// Plan is an explainable execution plan for one iteration: the states
// OPT-EXEC-PLAN assigned, the costs and constraints each decision rested
// on, a per-decision rationale, and the projected run time T(W,s) of
// Equation 1. Obtain one with Session.Plan (planning only) or from
// Result.Plan (the plan a Run executed); render it with Plan.Explain or
// Workflow.PlanDOT.
type Plan = plan.Plan

// NodePlan is one operator's planned treatment within a Plan.
type NodePlan = plan.NodePlan

// PlanFingerprint is the stable hash over every planning input a Plan
// was derived from (DAG topology, chain signatures, store view, carried
// statistics, options). Two plans with equal fingerprints are
// equivalent; the session's plan cache reuses the previous iteration's
// plan whenever the fingerprints match.
type PlanFingerprint = plan.Fingerprint

// PlanCacheOutcome reports how a plan was obtained: a cold solve, a
// partial re-solve of changed components, or a wholesale cache hit. See
// Plan.Cache.
type PlanCacheOutcome = plan.CacheOutcome

// Plan cache outcomes.
const (
	PlanCacheCold    = plan.CacheCold
	PlanCachePartial = plan.CachePartial
	PlanCacheHit     = plan.CacheHit
)

// PlanCacheStats counts a session's plan-cache hits, partial hits, and
// misses; see Session.PlanCacheStats.
type PlanCacheStats = plan.CacheStats

// Value is the unit of data flowing between operators: a data collection,
// an ML model, or a scalar (paper §3.2: "A HELIX operator takes one or
// more DCs and outputs DCs, ML models, or scalars").
type Value = any

// State is the execution state the optimizer assigns to an operator in a
// given iteration (paper §5.1).
type State = core.State

// The three operator states of the paper: computed from inputs, loaded
// from a previous iteration's materialization, or pruned entirely.
const (
	StateCompute = core.StateCompute
	StateLoad    = core.StateLoad
	StatePrune   = core.StatePrune
)

// Component classifies operators into the paper's three workflow
// components (§2): data preprocessing, learning/inference, postprocessing.
type Component = core.Component

// Workflow component constants.
const (
	DPR = core.DPR
	LI  = core.LI
	PPR = core.PPR
)

// RegisterType registers a concrete Go type for materialization with
// every store codec. Operator outputs that should be materialized and
// reloaded across program restarts must have their types registered.
// Types with no native or extension encoding in the binary codec travel
// through its gob escape hatch, which is what the registration feeds.
func RegisterType(v any) { store.RegisterValueType(v) }
