package helix

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"helix/internal/opt"
	"helix/internal/plan"
	"helix/internal/store"
)

// TestSharedWarmSessionZeroRecompute is the directed cross-session reuse
// case: session A runs a workflow (computing and publishing everything)
// and settles its steady-state plan; session B — a brand-new session on
// the same shared store — must then answer its very first Run entirely
// from shared state: a full plan-cache hit, zero max-flow solves, zero
// operator executions, and no growth of the store.
func TestSharedWarmSessionZeroRecompute(t *testing.T) {
	h, err := OpenSharedStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ctx := context.Background()

	a, err := Open("", WithSharedStore(h), WithTenant("alice"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var cA atomic.Int64
	resA, err := a.Run(ctx, buildWorkflow(&cA, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if cA.Load() != 4 {
		t.Fatalf("cold session computed %d operators, want 4", cA.Load())
	}
	// Settle: the second run plans against the published store and known
	// statistics; its fingerprint is the one every later session matches.
	if _, err := a.Run(ctx, buildWorkflow(&cA, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	artifacts := h.Artifacts()
	if artifacts == 0 {
		t.Fatal("cold session published no artifacts")
	}

	b, err := Open("", WithSharedStore(h), WithTenant("bob"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var cB atomic.Int64
	before := opt.SolveCount()
	resB, err := b.Run(ctx, buildWorkflow(&cB, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if d := opt.SolveCount() - before; d != 0 {
		t.Fatalf("warm session's first plan performed %d max-flow solves, want 0", d)
	}
	if resB.Plan.Cache != plan.CacheHit {
		t.Fatalf("warm session's first plan outcome %v, want a shared-cache full hit", resB.Plan.Cache)
	}
	if cB.Load() != 0 {
		t.Fatalf("warm session recomputed %d operators, want 0", cB.Load())
	}
	if resB.Values["checked"] != resA.Values["checked"] {
		t.Fatalf("warm output %v != cold output %v", resB.Values["checked"], resA.Values["checked"])
	}
	if got := h.Artifacts(); got != artifacts {
		t.Fatalf("warm session grew the store: %d artifacts, want %d (write-once dedup)", got, artifacts)
	}
	if h.TenantBytes("bob") != 0 {
		t.Fatalf("warm session published %d bytes under its tenant, want 0", h.TenantBytes("bob"))
	}
	if h.TenantBytes("alice") != h.StorageBytes() {
		t.Fatalf("tenant accounting: alice holds %d B of %d B total", h.TenantBytes("alice"), h.StorageBytes())
	}
}

// TestSharedPurgeRespectsLivePins: purging the shared store never
// invalidates an artifact a live session's executed plan depends on.
// Pins are per-attachment — released only when that session detaches —
// so an aggressive purge under one session leaves every other live
// session's reuse intact, and only a store with no remaining pins can
// actually be emptied.
func TestSharedPurgeRespectsLivePins(t *testing.T) {
	h, err := OpenSharedStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ctx := context.Background()

	a, err := Open("", WithSharedStore(h), WithTenant("a"))
	if err != nil {
		t.Fatal(err)
	}
	var cA atomic.Int64
	if _, err := a.Run(ctx, buildWorkflow(&cA, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	b, err := Open("", WithSharedStore(h), WithTenant("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var cB atomic.Int64
	resB, err := b.Run(ctx, buildWorkflow(&cB, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}

	st := h.handle.Store()
	n := st.Len()
	if n == 0 {
		t.Fatal("no artifacts published")
	}
	for _, np := range resB.Plan.Nodes {
		sig := np.Node.ChainSignature()
		if st.Has(sig) && st.Refs(sig) < 1 {
			t.Fatalf("published artifact %s of b's executed plan has %d refs, want ≥1", np.Node.Name, st.Refs(sig))
		}
	}

	// A keep-nothing purge — the harshest possible eviction — must leave
	// every pinned entry alone.
	if _, err := st.Purge(func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != n {
		t.Fatalf("purge removed pinned artifacts: %d left of %d", got, n)
	}

	// One session detaching doesn't strand the other: b's pins still hold.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Purge(func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != n {
		t.Fatalf("purge under one live session removed another's artifacts: %d left of %d", got, n)
	}
	before := cB.Load()
	if _, err := b.Run(ctx, buildWorkflow(&cB, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if got := cB.Load(); got != before {
		t.Fatalf("live session recomputed %d operators after a foreign purge, want 0", got-before)
	}

	// With the last session detached nothing is pinned and the purge is
	// free to empty the store.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Purge(func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != 0 {
		t.Fatalf("purge with no live sessions left %d artifacts", got)
	}
}

// stressWorkflow builds the stress workload: a prefix (source + scanner)
// shared by every session and a learner/reducer suffix unique to one
// (worker, iteration) pair, so concurrent sessions race to publish the
// same prefix signatures while growing disjoint suffixes.
func stressWorkflow(worker, iter int) (*Workflow, float64) {
	wf := New(fmt.Sprintf("stress-w%d", worker))
	src := wf.Source("data", "v1", func(ctx context.Context, in []Value) (Value, error) {
		time.Sleep(time.Millisecond)
		return []string{"a", "b", "c", "d"}, nil
	})
	rows := wf.Scanner("rows", "csv", func(ctx context.Context, in []Value) (Value, error) {
		time.Sleep(time.Millisecond)
		return len(in[0].([]string)), nil
	}, src)
	k := 100*worker + iter + 1
	model := wf.Learner("model", fmt.Sprintf("w%d-i%d", worker, iter), func(ctx context.Context, in []Value) (Value, error) {
		time.Sleep(2 * time.Millisecond)
		return in[0].(int) * k, nil
	}, rows)
	wf.Reducer("out", "acc", func(ctx context.Context, in []Value) (Value, error) {
		return float64(in[0].(int)), nil
	}, model).IsOutput()
	return wf, float64(4 * k)
}

// TestSharedStoreConcurrentStress hammers one shared store with five
// concurrent sessions for several iterations each while a purger
// repeatedly attempts keep-nothing evictions, all under the race
// detector in CI. Invariants checked: every session's outputs stay
// correct; refcount soundness (every signature of a session's executed
// plan holds ≥1 ref until that session moves on); manifest consistency
// after the storm (unique keys, every entry's payload on disk at its
// recorded size, in-memory table matching the manifest); tenant
// accounting summing to total usage; and full reclamation once the last
// session detaches.
func TestSharedStoreConcurrentStress(t *testing.T) {
	const workers = 5
	const iters = 4
	h, err := OpenSharedStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	st := h.handle.Store()
	ctx := context.Background()

	sessions := make([]*Session, workers)
	for w := 0; w < workers; w++ {
		s, err := Open("", WithSharedStore(h),
			WithTenant(fmt.Sprintf("w%d", w)),
			WithPolicy(PolicyAlways))
		if err != nil {
			t.Fatal(err)
		}
		sessions[w] = s
	}

	// Phase 1: every session runs its first iteration concurrently — the
	// shared prefix races through single-flight publish — and pins its
	// plan. From here on each session only ever loads signatures its own
	// pins protect, so phase 2's purger can never strand a live load.
	var wg sync.WaitGroup
	runIter := func(w, it int) {
		s := sessions[w]
		wf, want := stressWorkflow(w, it)
		res, err := s.Run(ctx, wf)
		if err != nil {
			t.Errorf("worker %d iteration %d: %v", w, it, err)
			return
		}
		if got := res.Values["out"]; got != want {
			t.Errorf("worker %d iteration %d: out = %v, want %v", w, it, got, want)
		}
		for _, np := range res.Plan.Nodes {
			sig := np.Node.ChainSignature()
			if st.Has(sig) && st.Refs(sig) < 1 {
				t.Errorf("worker %d iteration %d: executed-plan artifact %s has no refs", w, it, np.Node.Name)
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { defer wg.Done(); runIter(w, 0) }(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: remaining iterations under concurrent purge pressure.
	stop := make(chan struct{})
	var purges sync.WaitGroup
	purges.Add(1)
	go func() {
		defer purges.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := st.Purge(func(string) bool { return false }); err != nil {
					t.Errorf("purge: %v", err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 1; it < iters; it++ {
				runIter(w, it)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	purges.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Manifest consistency: flush, then cross-check disk against memory.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(h.Dir(), "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var entries []store.Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if seen[e.Key] {
			t.Fatalf("manifest holds duplicate key %s", e.Key)
		}
		seen[e.Key] = true
		fi, err := os.Stat(filepath.Join(h.Dir(), e.Key+".gob"))
		if err != nil {
			t.Fatalf("manifest entry %s (%s) has no payload on disk: %v", e.Key, e.Name, err)
		}
		if fi.Size() != e.Size {
			t.Fatalf("manifest entry %s: %d B on disk, %d B recorded", e.Key, fi.Size(), e.Size)
		}
		if !st.Has(e.Key) {
			t.Fatalf("manifest entry %s missing from the in-memory table", e.Key)
		}
	}
	if st.Len() != len(entries) {
		t.Fatalf("in-memory table holds %d entries, manifest %d", st.Len(), len(entries))
	}

	// Tenant accounting: every byte is attributed to exactly one tenant.
	var tenantTotal int64
	for w := 0; w < workers; w++ {
		tenantTotal += h.TenantBytes(fmt.Sprintf("w%d", w))
	}
	if tenantTotal != h.StorageBytes() {
		t.Fatalf("tenant bytes sum to %d, store holds %d", tenantTotal, h.StorageBytes())
	}

	// Reclamation: once every session detaches, nothing is pinned and a
	// keep-nothing purge empties the store.
	for _, s := range sessions {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range st.Keys() {
		if st.Refs(key) != 0 || st.Pinned(key) {
			t.Fatalf("key %s still pinned after every session detached", key)
		}
	}
	if _, err := st.Purge(func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != 0 {
		t.Fatalf("purge after all sessions detached left %d artifacts", got)
	}
}
