package helix

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestSessionCloseFlushesForRestart: materializations accepted by a
// session's last run — written by the background writer pool — must
// survive Close and be reusable by a fresh session on the same
// directory. This is the Session.Close half of the Flush() contract.
func TestSessionCloseFlushesForRestart(t *testing.T) {
	dir := t.TempDir()
	sess, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	if _, err := sess.Run(context.Background(), buildWorkflow(&calls, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("first run computed nothing")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}

	resumed, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	var calls2 atomic.Int64
	res, err := resumed.Run(context.Background(), buildWorkflow(&calls2, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 0 {
		t.Fatalf("restarted session recomputed %d operators: Close lost materializations", calls2.Load())
	}
	if res.Values["checked"] != 300.0 {
		t.Fatalf("restarted output = %v, want 300", res.Values["checked"])
	}
}

// TestSessionSyncMaterializationOption: the escape hatch must put the
// materialization bill back on the iteration's critical path while
// producing identical results and reuse behavior.
func TestSessionSyncMaterializationOption(t *testing.T) {
	sess, err := NewSession(t.TempDir(), Options{SyncMaterialization: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var calls atomic.Int64
	res, err := sess.Run(context.Background(), buildWorkflow(&calls, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["checked"] != 300.0 {
		t.Fatalf("sync-mode output = %v, want 300", res.Values["checked"])
	}
	if res.FlushWait != 0 {
		t.Fatalf("sync mode reported FlushWait %v", res.FlushWait)
	}
	var calls2 atomic.Int64
	if _, err := sess.Run(context.Background(), buildWorkflow(&calls2, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 0 {
		t.Fatalf("sync-mode rerun recomputed %d operators", calls2.Load())
	}
}
