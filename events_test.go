package helix_test

import (
	"context"
	"sync"
	"testing"

	"helix"
	"helix/internal/core"
	"helix/internal/sim"
	"helix/internal/workloads"
)

// eventLog records an observer's deliveries in order. The engine
// delivers serially but from worker goroutines, so appends lock.
type eventLog struct {
	mu     sync.Mutex
	events []helix.RunEvent
}

func (l *eventLog) observe(ev helix.RunEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) take() []helix.RunEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.events
	l.events = nil
	return out
}

// TestObserverEventStream is the acceptance scenario: a recorded event
// stream for a census run contains exactly one plan event with the
// correct cache outcome, node events whose states match Result.Plan
// (every executing live node starts and retires exactly once; pruned
// live nodes retire without starting), and a final flush + done pair.
func TestObserverEventStream(t *testing.T) {
	workloads.RegisterAll()
	wl, err := sim.NewWorkload("census", workloads.Scale{Rows: 1, CostFactor: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var log eventLog
	sess, err := helix.Open(t.TempDir(), helix.WithObserver(log.observe))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// Two iterations: 0 is a cold computed run, 1 reuses (loads/prunes),
	// exercising every node-state shape of the stream.
	for iter := 0; iter < 2; iter++ {
		res, err := sess.Run(ctx, wl.Build())
		if err != nil {
			t.Fatal(err)
		}
		events := log.take()
		if len(events) == 0 {
			t.Fatalf("iteration %d emitted no events", iter)
		}

		// Exactly one plan event, first in the stream, with the plan's
		// own cache outcome and state mix.
		plans := 0
		for _, ev := range events {
			if _, ok := ev.(helix.PlanEvent); ok {
				plans++
			}
		}
		if plans != 1 {
			t.Fatalf("iteration %d: %d plan events, want exactly 1", iter, plans)
		}
		pe, ok := events[0].(helix.PlanEvent)
		if !ok {
			t.Fatalf("iteration %d: first event %T, want PlanEvent", iter, events[0])
		}
		if pe.Iteration != iter {
			t.Fatalf("plan event iteration %d, want %d", pe.Iteration, iter)
		}
		if pe.Outcome != res.Plan.Cache {
			t.Fatalf("plan event outcome %v, want %v", pe.Outcome, res.Plan.Cache)
		}
		if pe.Compute != res.StateCounts[core.StateCompute] ||
			pe.Load != res.StateCounts[core.StateLoad] ||
			pe.Prune != res.StateCounts[core.StatePrune] {
			t.Fatalf("plan event mix {%d %d %d} != result counts %v",
				pe.Compute, pe.Load, pe.Prune, res.StateCounts)
		}

		// Node events: states match the executed plan; every executing
		// live node starts and retires exactly once, pruned live nodes
		// retire exactly once without starting.
		started := map[string]int{}
		retired := map[string]int{}
		for _, ev := range events {
			ne, ok := ev.(helix.NodeEvent)
			if !ok {
				continue
			}
			np := res.Plan.ByName(ne.Name)
			if np == nil {
				t.Fatalf("node event for %q not in plan", ne.Name)
			}
			if ne.State != np.State {
				t.Fatalf("node %s event state %v, plan state %v", ne.Name, ne.State, np.State)
			}
			if !np.Live {
				t.Fatalf("node event for non-live node %q", ne.Name)
			}
			if ne.Phase == helix.NodeStarted {
				started[ne.Name]++
			} else {
				retired[ne.Name]++
			}
		}
		for _, np := range res.Plan.Nodes {
			if !np.Live {
				continue
			}
			name := np.Node.Name
			wantStart := 0
			if np.State != core.StatePrune {
				wantStart = 1
			}
			if started[name] != wantStart {
				t.Fatalf("iteration %d: node %s started %d times, want %d", iter, name, started[name], wantStart)
			}
			if retired[name] != 1 {
				t.Fatalf("iteration %d: node %s retired %d times, want 1", iter, name, retired[name])
			}
		}

		// The stream ends with the flush barrier, the planner-health
		// stats, then done.
		last, prev := events[len(events)-1], events[len(events)-2]
		de, ok := last.(helix.DoneEvent)
		if !ok {
			t.Fatalf("iteration %d: last event %T, want DoneEvent", iter, last)
		}
		if de.Iteration != iter || de.Wall != res.Wall || de.FlushWait != res.FlushWait {
			t.Fatalf("done event %+v inconsistent with result (wall %v flush %v)", de, res.Wall, res.FlushWait)
		}
		rs, ok := prev.(helix.RunStatsEvent)
		if !ok {
			t.Fatalf("iteration %d: penultimate event %T, want RunStatsEvent", iter, prev)
		}
		if rs.Iteration != iter || rs.Outcome != res.Plan.Cache || rs.Replans != 0 {
			t.Fatalf("run stats event %+v inconsistent with result (outcome %v)", rs, res.Plan.Cache)
		}
		fe, ok := events[len(events)-3].(helix.FlushEvent)
		if !ok {
			t.Fatalf("iteration %d: antepenultimate event %T, want FlushEvent", iter, events[len(events)-3])
		}
		if fe.Wait != res.FlushWait {
			t.Fatalf("flush event wait %v, want %v", fe.Wait, res.FlushWait)
		}
	}
}

// TestRunScopedObserver: a run-scoped WithObserver sees exactly its own
// run, and a session without an observer emits nothing before or after.
func TestRunScopedObserver(t *testing.T) {
	workloads.RegisterAll()
	wl, err := sim.NewWorkload("census", workloads.Scale{Rows: 1, CostFactor: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	if _, err := sess.Run(ctx, wl.Build()); err != nil {
		t.Fatal(err)
	}
	var log eventLog
	if _, err := sess.Run(ctx, wl.Build(), helix.WithObserver(log.observe)); err != nil {
		t.Fatal(err)
	}
	if n := len(log.take()); n == 0 {
		t.Fatal("run-scoped observer saw no events")
	}
	if _, err := sess.Run(ctx, wl.Build()); err != nil {
		t.Fatal(err)
	}
	if n := len(log.take()); n != 0 {
		t.Fatalf("observer saw %d events from a run it was not installed on", n)
	}
}
