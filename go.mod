module helix

go 1.24
