package helix_test

import (
	"context"
	"testing"

	"helix"
	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/plan"
	"helix/internal/sim"
	"helix/internal/workloads"
)

// planRow projects a NodePlan onto its decision-relevant fields so plans
// built from different compilations can be compared for equivalence.
type planRow struct {
	name         string
	state        core.State
	live         bool
	original     bool
	output       bool
	mandatoryMat bool
	costs        opt.Costs
	own, cum     float64
	rationale    string
}

func planRows(p *helix.Plan) map[string]planRow {
	rows := make(map[string]planRow, len(p.Nodes))
	for _, np := range p.Nodes {
		rows[np.Node.Name] = planRow{
			name:         np.Node.Name,
			state:        np.State,
			live:         np.Live,
			original:     np.Original,
			output:       np.Output,
			mandatoryMat: np.MandatoryMat,
			costs:        np.Costs,
			own:          np.ProjectedOwn,
			cum:          np.ProjectedCum,
			rationale:    np.Rationale,
		}
	}
	return rows
}

func assertPlansEquivalent(t *testing.T, got, want *helix.Plan) {
	t.Helper()
	gr, wr := planRows(got), planRows(want)
	if len(gr) != len(wr) {
		t.Fatalf("plan has %d rows, want %d", len(gr), len(wr))
	}
	for name, w := range wr {
		if g, ok := gr[name]; !ok || g != w {
			t.Fatalf("row %s differs:\n got %+v\nwant %+v", name, gr[name], w)
		}
	}
	if got.ProjectedSeconds != want.ProjectedSeconds {
		t.Fatalf("ProjectedSeconds %v, want %v", got.ProjectedSeconds, want.ProjectedSeconds)
	}
}

// TestSessionPlanCacheEquivalenceOnWorkloads drives the census and
// genomics workloads through their full iteration schedules and checks,
// at every iteration, that the cached/partial plan the session produces
// deep-equals a from-scratch solve of the same inputs — and that a repeat
// Session.Plan of an unchanged workflow is a full fingerprint hit that
// performs zero max-flow solves.
func TestSessionPlanCacheEquivalenceOnWorkloads(t *testing.T) {
	workloads.RegisterAll()
	for _, wlName := range []string{"census", "genomics"} {
		t.Run(wlName, func(t *testing.T) {
			wl, err := sim.NewWorkload(wlName, workloads.Scale{Rows: 1, CostFactor: 40}, 1)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := helix.NewSession(t.TempDir(), helix.Options{
				DiskBytesPerSec: sim.PaperDiskBytesPerSec,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			// A second session on its own directory with the cache off is
			// the from-scratch oracle. It replays the same store contents
			// by running the same schedule.
			oracle, err := helix.NewSession(t.TempDir(), helix.Options{
				DiskBytesPerSec: sim.PaperDiskBytesPerSec,
				PlanCache:       helix.PlanCacheOff,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Close()

			ctx := context.Background()
			seq := wl.Sequence()
			iters := len(seq)
			if iters > 6 {
				iters = 6
			}
			oracleWl, err := sim.NewWorkload(wlName, workloads.Scale{Rows: 1, CostFactor: 40}, 1)
			if err != nil {
				t.Fatal(err)
			}
			for ti := 0; ti < iters; ti++ {
				if ti > 0 {
					wl.Mutate(ti, seq[ti])
					oracleWl.Mutate(ti, seq[ti])
				}
				wf := wl.Build()
				owf := oracleWl.Build()

				// The deep-equality check pairs two plans WITHIN the
				// cached session (first call, then a repeat that must be
				// a full hit): measured compute times differ between
				// sessions, so only states/liveness/originality are
				// comparable against the separate cold oracle below.
				p1, err := sess.Plan(wf)
				if err != nil {
					t.Fatal(err)
				}
				solvesBefore := opt.SolveCount()
				p2, err := sess.Plan(wf)
				if err != nil {
					t.Fatal(err)
				}
				if p2.Cache != plan.CacheHit {
					t.Fatalf("iter %d: repeat Plan outcome %v, want hit", ti, p2.Cache)
				}
				if d := opt.SolveCount() - solvesBefore; d != 0 {
					t.Fatalf("iter %d: cache hit performed %d solves, want 0", ti, d)
				}
				assertPlansEquivalent(t, p2, p1)

				// States must agree with the oracle's cold solve (states,
				// liveness, originality — cost floats differ because each
				// session measures its own operator timings).
				op, err := oracle.Plan(owf)
				if err != nil {
					t.Fatal(err)
				}
				if op.Cache != plan.CacheCold {
					t.Fatalf("iter %d: oracle plan outcome %v, want cold", ti, op.Cache)
				}
				for _, np := range p1.Nodes {
					onp := op.ByName(np.Node.Name)
					if onp == nil {
						t.Fatalf("iter %d: oracle lacks node %s", ti, np.Node.Name)
					}
					if np.Original != onp.Original || np.Live != onp.Live {
						t.Fatalf("iter %d node %s: original/live %v/%v, oracle %v/%v",
							ti, np.Node.Name, np.Original, np.Live, onp.Original, onp.Live)
					}
				}

				if _, err := sess.Run(ctx, wf); err != nil {
					t.Fatal(err)
				}
				if _, err := oracle.Run(ctx, owf); err != nil {
					t.Fatal(err)
				}
			}
			st := sess.PlanCacheStats()
			if st.Hits == 0 {
				t.Fatalf("no full cache hits over %d iterations: %+v", iters, st)
			}
		})
	}
}

// TestSessionSteadyStateRunIsFullHit: once the store has absorbed an
// iteration's materializations, re-running the identical workflow plans
// with zero solves — the unchanged-DAG + unchanged-store fast path.
func TestSessionSteadyStateRunIsFullHit(t *testing.T) {
	workloads.RegisterAll()
	wl, err := sim.NewWorkload("census", workloads.Scale{Rows: 1, CostFactor: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// Iteration 0 materializes; iteration 1 (identical workflow) settles
	// the store: it loads/prunes and writes nothing new.
	if _, err := sess.Run(ctx, wl.Build()); err != nil {
		t.Fatal(err)
	}
	res1, err := sess.Run(ctx, wl.Build())
	if err != nil {
		t.Fatal(err)
	}
	if res1.StateCounts[core.StateCompute] != 0 {
		t.Fatalf("identical rerun computed %d nodes", res1.StateCounts[core.StateCompute])
	}

	// Iteration 2: nothing changed since iteration 1 — full hit, zero
	// solves, zero recomputation.
	solvesBefore := opt.SolveCount()
	res2, err := sess.Run(ctx, wl.Build())
	if err != nil {
		t.Fatal(err)
	}
	if d := opt.SolveCount() - solvesBefore; d != 0 {
		t.Fatalf("steady-state iteration performed %d solves, want 0", d)
	}
	if res2.Plan.Cache != plan.CacheHit {
		t.Fatalf("steady-state plan outcome %v, want hit", res2.Plan.Cache)
	}
	for name, want := range res1.Values {
		if got := res2.Values[name]; got == nil {
			t.Fatalf("output %s missing from cached-plan run (want %v)", name, want)
		}
	}
}

// TestSessionPlanInspectionDoesNotEvictSteadyState: Session.Plan is
// documented as pure inspection — planning unrelated workflows between
// Runs must not evict the cache entry the next Run's full hit rests on.
func TestSessionPlanInspectionDoesNotEvictSteadyState(t *testing.T) {
	workloads.RegisterAll()
	wl, err := sim.NewWorkload("census", workloads.Scale{Rows: 1, CostFactor: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	other, err := sim.NewWorkload("genomics", workloads.Scale{Rows: 1, CostFactor: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// Reach the settled steady state (see TestSessionSteadyStateRunIsFullHit).
	for i := 0; i < 2; i++ {
		if _, err := sess.Run(ctx, wl.Build()); err != nil {
			t.Fatal(err)
		}
	}

	// Inspect an unrelated workflow a few times.
	for i := 0; i < 3; i++ {
		if _, err := sess.Plan(other.Build()); err != nil {
			t.Fatal(err)
		}
	}

	solvesBefore := opt.SolveCount()
	res, err := sess.Run(ctx, wl.Build())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Cache != plan.CacheHit {
		t.Fatalf("steady-state run after inspections planned %v, want hit", res.Plan.Cache)
	}
	if d := opt.SolveCount() - solvesBefore; d != 0 {
		t.Fatalf("steady-state run after inspections performed %d solves, want 0", d)
	}
}

// TestSessionOptionChangesForceResolve: a session opened on the same
// store directory with a different parallelism or storage budget must
// plan cold — configuration is part of the fingerprint, and caches are
// never shared across configurations.
func TestSessionOptionChangesForceResolve(t *testing.T) {
	workloads.RegisterAll()
	dir := t.TempDir()
	wl, err := sim.NewWorkload("census", workloads.Scale{Rows: 1, CostFactor: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	run := func(o helix.Options) *helix.Session {
		t.Helper()
		sess, err := helix.NewSession(dir, o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(ctx, wl.Build()); err != nil {
			t.Fatal(err)
		}
		return sess
	}

	s1 := run(helix.Options{Parallelism: 2})
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Same store, changed parallelism: the first plan of the new session
	// must be a cold solve, not any form of reuse.
	solvesBefore := opt.SolveCount()
	s2 := run(helix.Options{Parallelism: 4})
	if d := opt.SolveCount() - solvesBefore; d == 0 {
		t.Fatal("changed Parallelism reused a plan without any solve")
	}
	if st := s2.PlanCacheStats(); st.Hits != 0 {
		t.Fatalf("changed Parallelism produced cache hits: %+v", st)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Changed storage budget likewise.
	solvesBefore = opt.SolveCount()
	s3 := run(helix.Options{Parallelism: 4, StorageBudget: 1 << 20})
	if d := opt.SolveCount() - solvesBefore; d == 0 {
		t.Fatal("changed StorageBudget reused a plan without any solve")
	}
	if st := s3.PlanCacheStats(); st.Hits != 0 {
		t.Fatalf("changed StorageBudget produced cache hits: %+v", st)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}
