package helix_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"helix"
)

// TestErrBadWorkflow: declaration and compilation failures satisfy
// errors.Is(err, ErrBadWorkflow) while keeping their specific message,
// from both Compile and the session methods that compile.
func TestErrBadWorkflow(t *testing.T) {
	wf := helix.New("bad")
	wf.Source("x", "v1", nil) // no function
	if _, err := wf.Compile(); !errors.Is(err, helix.ErrBadWorkflow) {
		t.Fatalf("Compile err = %v, want ErrBadWorkflow", err)
	} else if !strings.Contains(err.Error(), "no function") {
		t.Fatalf("Compile err lost its cause: %v", err)
	}

	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Run(context.Background(), wf); !errors.Is(err, helix.ErrBadWorkflow) {
		t.Fatalf("Run err = %v, want ErrBadWorkflow", err)
	}
	if _, err := sess.Plan(wf); !errors.Is(err, helix.ErrBadWorkflow) {
		t.Fatalf("Plan err = %v, want ErrBadWorkflow", err)
	}

	// A cycle found at lowering time is tagged too.
	cyc := helix.New("cycle")
	a := cyc.Scanner("a", "p", func(ctx context.Context, in []helix.Value) (helix.Value, error) { return 1, nil })
	b := cyc.Scanner("b", "p", func(ctx context.Context, in []helix.Value) (helix.Value, error) { return 1, nil }, a)
	a.Uses(b)
	if _, err := cyc.Compile(); !errors.Is(err, helix.ErrBadWorkflow) {
		t.Fatalf("cyclic Compile err = %v, want ErrBadWorkflow", err)
	}
}

// TestErrPolicyUnknown covers both scopes: the constructor and a
// run-scoped WithPolicy override.
func TestErrPolicyUnknown(t *testing.T) {
	if _, err := helix.Open(t.TempDir(), helix.WithPolicy(helix.Policy(99))); !errors.Is(err, helix.ErrPolicyUnknown) {
		t.Fatalf("Open err = %v, want ErrPolicyUnknown", err)
	}
	if _, err := helix.NewSession(t.TempDir(), helix.Options{Policy: helix.Policy(99)}); !errors.Is(err, helix.ErrPolicyUnknown) {
		t.Fatalf("NewSession err = %v, want ErrPolicyUnknown", err)
	}
	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var c atomic.Int64
	if _, err := sess.Run(context.Background(), optWorkflow(&c, "LR reg=0.1"),
		helix.WithPolicy(helix.Policy(77))); !errors.Is(err, helix.ErrPolicyUnknown) {
		t.Fatalf("run-scoped err = %v, want ErrPolicyUnknown", err)
	}
	if c.Load() != 0 || sess.Iteration() != 0 {
		t.Fatal("rejected run executed work or advanced the iteration")
	}
}

// TestConstructorFailureLeaksNothing is the store-leak regression test:
// a failed constructor (unknown policy) must not leave the store's
// writer pool or any other goroutine behind, and must not wedge the
// directory for a subsequent good open.
func TestConstructorFailureLeaksNothing(t *testing.T) {
	dir := t.TempDir()
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := helix.Open(dir, helix.WithPolicy(helix.Policy(99))); err == nil {
			t.Fatal("expected unknown-policy error")
		}
	}
	// Let any stray goroutine that was (incorrectly) spawned settle
	// before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("failed constructors leaked goroutines: %d before, %d after", before, after)
	}

	// The directory still opens and runs cleanly.
	sess, err := helix.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var c atomic.Int64
	if _, err := sess.Run(context.Background(), optWorkflow(&c, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestErrSessionClosed: Run and Plan after Close fail typed; Close is
// idempotent.
func TestErrSessionClosed(t *testing.T) {
	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var c atomic.Int64
	wf := optWorkflow(&c, "LR reg=0.1")
	if _, err := sess.Run(context.Background(), wf); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), wf); !errors.Is(err, helix.ErrSessionClosed) {
		t.Fatalf("Run after Close err = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Plan(wf); !errors.Is(err, helix.ErrSessionClosed) {
		t.Fatalf("Plan after Close err = %v, want ErrSessionClosed", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close err = %v, want nil", err)
	}
}

// TestErrConcurrentRun: a second Run while one is in flight is rejected
// with the sentinel; run under -race this also proves the guard makes
// the prev/iter handoff race-free.
func TestErrConcurrentRun(t *testing.T) {
	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	inFlight := make(chan struct{})
	release := make(chan struct{})
	wf := helix.New("slow")
	wf.Source("gate", "v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		close(inFlight)
		<-release
		return 1.0, nil
	}).IsOutput()

	var wg sync.WaitGroup
	wg.Add(1)
	var firstErr error
	go func() {
		defer wg.Done()
		_, firstErr = sess.Run(ctx, wf)
	}()
	<-inFlight

	var c atomic.Int64
	if _, err := sess.Run(ctx, optWorkflow(&c, "LR reg=0.1")); !errors.Is(err, helix.ErrConcurrentRun) {
		t.Fatalf("concurrent Run err = %v, want ErrConcurrentRun", err)
	}
	close(release)
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("first Run failed: %v", firstErr)
	}

	// After the first Run finished, the session accepts work again.
	if _, err := sess.Run(ctx, optWorkflow(&c, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
}

// TestNodeError: an operator failure surfaces as *NodeError carrying the
// operator name and unwrapping to the operator's own error.
func TestNodeError(t *testing.T) {
	sess, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	boom := errors.New("model exploded")
	wf := helix.New("failing")
	src := wf.Source("data", "v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		return 1.0, nil
	})
	wf.Learner("model", "LR", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		return nil, boom
	}, src).IsOutput()

	_, err = sess.Run(context.Background(), wf)
	var ne *helix.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v (%T), want *NodeError", err, err)
	}
	if ne.Op != "model" {
		t.Fatalf("NodeError.Op = %q, want model", ne.Op)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err %v does not unwrap to the operator's error", err)
	}
}
