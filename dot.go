package helix

import (
	"fmt"
	"sort"
	"strings"

	"helix/internal/core"
)

// DOT renders the workflow's DAG in Graphviz DOT format: one node per
// operator, colored by workflow component as in the paper's Figure 3
// (purple DPR, orange L/I and PPR), with outputs double-bordered. If
// result is non-nil, each node is annotated with its execution state and
// time from that run — a visual version of the paper's optimized-DAG
// figures with drum/pruned markings.
func (w *Workflow) DOT(result *Result) (string, error) {
	prog, err := w.Compile()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", w.name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"Helvetica\"];\n")

	nodes := append([]*core.Node(nil), prog.DAG.Nodes()...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	for _, n := range nodes {
		color := "#d9c7e8" // DPR purple
		if n.Component != core.DPR {
			color = "#f8cf9e" // L/I + PPR orange
		}
		label := fmt.Sprintf("%s\\n%s", n.Name, n.Kind)
		attrs := []string{fmt.Sprintf("fillcolor=%q", color)}
		if result != nil {
			if rep, ok := result.Nodes[n.Name]; ok {
				label += fmt.Sprintf("\\n%v %.3fs", rep.State, rep.Seconds)
				switch rep.State {
				case core.StatePrune:
					attrs = append(attrs, `fillcolor="#dddddd"`, `fontcolor="#888888"`)
				case core.StateLoad:
					attrs = append(attrs, `penwidth=2`, `color="#2266cc"`)
				}
				if rep.Bytes > 0 {
					label += fmt.Sprintf("\\n⛁ %dB", rep.Bytes) // the paper's drum
				}
			}
		}
		for _, o := range prog.DAG.Outputs() {
			if o == n {
				attrs = append(attrs, "peripheries=2")
			}
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		fmt.Fprintf(&b, "  %q [%s];\n", n.Name, strings.Join(attrs, ", "))
	}
	for _, n := range nodes {
		children := append([]*core.Node(nil), n.Children()...)
		sort.Slice(children, func(i, j int) bool { return children[i].Name < children[j].Name })
		for _, c := range children {
			fmt.Fprintf(&b, "  %q -> %q;\n", n.Name, c.Name)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}
