package helix

import (
	"fmt"
	"sort"
	"strings"

	"helix/internal/core"
)

// DOT renders the workflow's DAG in Graphviz DOT format: one node per
// operator, colored by workflow component as in the paper's Figure 3
// (purple DPR, orange L/I and PPR), with outputs double-bordered. If
// result is non-nil, each node is annotated with its execution state and
// time from that run — a visual version of the paper's optimized-DAG
// figures with drum/pruned markings.
func (w *Workflow) DOT(result *Result) (string, error) {
	return w.renderDOT(func(n *core.Node) (string, []string) {
		if result == nil {
			return "", nil
		}
		rep, ok := result.Nodes[n.Name]
		if !ok {
			return "", nil
		}
		label := fmt.Sprintf("\\n%v %.3fs", rep.State, rep.Seconds)
		attrs := stateStyle(rep.State)
		if rep.Bytes > 0 {
			label += fmt.Sprintf("\\n⛁ %dB", rep.Bytes) // the paper's drum
		}
		return label, attrs
	})
}

// PlanDOT renders the workflow's DAG annotated with an execution plan's
// decisions rather than a finished run's outcomes: each node shows its
// assigned state and projected cumulative time C(n), pruned nodes are
// grayed out, loads are blue-bordered, mandatory-materialization outputs
// carry the paper's drum marker, and every node's decision rationale is
// attached as a Graphviz tooltip. The plan should come from Session.Plan
// (or Result.Plan) for this same workflow; nodes are matched by name.
func (w *Workflow) PlanDOT(p *Plan) (string, error) {
	return w.renderDOT(func(n *core.Node) (string, []string) {
		if p == nil {
			return "", nil
		}
		np := p.ByName(n.Name)
		if np == nil {
			return "", nil
		}
		label := fmt.Sprintf("\\n%v C(n)=%.3fs", np.State, np.ProjectedCum)
		attrs := stateStyle(np.State)
		if np.MandatoryMat {
			label += "\\n⛁ mandatory" // the paper's drum
		}
		if np.FuseGroup >= 0 {
			// Fused-run members render dashed with a shared group marker:
			// the run executes as one scheduled unit and only its tail's
			// value is ever built.
			label += fmt.Sprintf("\\n≋ fused #%d", np.FuseGroup)
			attrs = append(attrs, `style="filled,dashed"`)
		}
		attrs = append(attrs, fmt.Sprintf("tooltip=%q", np.Rationale))
		return label, attrs
	})
}

// stateStyle returns the extra node attributes shared by both renderings:
// pruned nodes gray out, loads get a blue border.
func stateStyle(s core.State) []string {
	switch s {
	case core.StatePrune:
		return []string{`fillcolor="#dddddd"`, `fontcolor="#888888"`}
	case core.StateLoad:
		return []string{`penwidth=2`, `color="#2266cc"`}
	}
	return nil
}

// renderDOT compiles the workflow and emits the DOT graph, delegating
// per-node annotation (label suffix + extra attributes) to annotate.
func (w *Workflow) renderDOT(annotate func(*core.Node) (string, []string)) (string, error) {
	prog, err := w.Compile()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", w.name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"Helvetica\"];\n")

	nodes := append([]*core.Node(nil), prog.DAG.Nodes()...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	for _, n := range nodes {
		color := "#d9c7e8" // DPR purple
		if n.Component != core.DPR {
			color = "#f8cf9e" // L/I + PPR orange
		}
		label := fmt.Sprintf("%s\\n%s", n.Name, n.Kind)
		attrs := []string{fmt.Sprintf("fillcolor=%q", color)}
		extraLabel, extraAttrs := annotate(n)
		label += extraLabel
		attrs = append(attrs, extraAttrs...)
		for _, o := range prog.DAG.Outputs() {
			if o == n {
				attrs = append(attrs, "peripheries=2")
			}
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		fmt.Fprintf(&b, "  %q [%s];\n", n.Name, strings.Join(attrs, ", "))
	}
	for _, n := range nodes {
		children := append([]*core.Node(nil), n.Children()...)
		sort.Slice(children, func(i, j int) bool { return children[i].Name < children[j].Name })
		for _, c := range children {
			fmt.Fprintf(&b, "  %q -> %q;\n", n.Name, c.Name)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}
