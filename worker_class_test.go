package helix

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"helix/internal/store"
)

// TestWorkerClassPoolSizes pins the routing of every worker class to its
// pool: WorkerCompute → the engine's compute parallelism, WorkerIO → the
// engine's load pool, WorkerMat → the store's write-behind writer pool.
// WithMatWriters and WithWorkerClass(WorkerMat, …) must be one surface:
// both land in the same store field, and the effective pool size is what
// the store will actually spawn.
func TestWorkerClassPoolSizes(t *testing.T) {
	sess, err := Open(t.TempDir(),
		WithWorkerClass(WorkerCompute, 3),
		WithWorkerClass(WorkerIO, 5),
		WithWorkerClass(WorkerMat, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := sess.engine.Opts.Parallelism; got != 3 {
		t.Errorf("compute pool = %d, want 3", got)
	}
	if got := sess.engine.Opts.IOWorkers; got != 5 {
		t.Errorf("io pool = %d, want 5", got)
	}
	if got := sess.store.Writers; got != 2 {
		t.Errorf("mat writer pool = %d, want 2", got)
	}
	if got := sess.store.WriterPoolSize(); got != 2 {
		t.Errorf("effective mat writer pool = %d, want 2", got)
	}

	// WithMatWriters is the same knob: identical routing, identical pool.
	viaMat, err := Open(t.TempDir(), WithMatWriters(2))
	if err != nil {
		t.Fatal(err)
	}
	defer viaMat.Close()
	if viaMat.store.Writers != sess.store.Writers {
		t.Errorf("WithMatWriters(2) → pool %d, WithWorkerClass(WorkerMat, 2) → pool %d; want equal",
			viaMat.store.Writers, sess.store.Writers)
	}

	// Unset falls back to the store default.
	def, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	if got := def.store.WriterPoolSize(); got != store.DefaultWriters {
		t.Errorf("default mat writer pool = %d, want %d", got, store.DefaultWriters)
	}
}

// TestWorkerMatRejectedAtRunScope: the materialization writer pool
// belongs to the store, so the WorkerMat class is session-scoped even
// though WithWorkerClass itself is a run-scoped option for the other
// classes.
func TestWorkerMatRejectedAtRunScope(t *testing.T) {
	sess, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var c atomic.Int64
	wf := buildWorkflow(&c, "LR reg=0.1")
	if _, err := sess.Run(context.Background(), wf, WithWorkerClass(WorkerMat, 2)); !errors.Is(err, ErrSessionOption) {
		t.Fatalf("Run with WorkerMat: err = %v, want ErrSessionOption", err)
	}
	if _, err := sess.Plan(wf, WithWorkerClass(WorkerMat, 2)); !errors.Is(err, ErrSessionOption) {
		t.Fatalf("Plan with WorkerMat: err = %v, want ErrSessionOption", err)
	}
	if c.Load() != 0 {
		t.Fatal("rejected run executed operators")
	}
	// The other classes stay run-scoped.
	if _, err := sess.Run(context.Background(), wf,
		WithWorkerClass(WorkerCompute, 2), WithWorkerClass(WorkerIO, 2)); err != nil {
		t.Fatalf("run-scoped compute/io classes: %v", err)
	}
}
