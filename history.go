package helix

import (
	"sort"
	"time"

	"helix/internal/core"
)

// IterationRecord summarizes one executed iteration for introspection —
// a first step toward the paper's future-work goal of "introspection and
// querying across workflow versions over time" (§8).
type IterationRecord struct {
	// Iteration is the 0-based iteration index.
	Iteration int
	// WorkflowName is the declared workflow name.
	WorkflowName string
	// Started is the wall-clock start of the run.
	Started time.Time
	// Wall is the iteration's duration.
	Wall time.Duration
	// States counts live operators per execution state.
	States map[State]int
	// Changed lists operators that were original this iteration (had no
	// equivalent in the previous one) — the user-visible "what did my
	// edit invalidate" answer.
	Changed []string
	// MatTime is the materialization overhead.
	MatTime time.Duration
	// StorageBytes is store usage after the iteration.
	StorageBytes int64
}

// History returns the session's per-iteration records, oldest first. The
// slice is owned by the caller. History is persisted with the session
// state, so a session reopened on the same directory sees the records of
// iterations run before the restart.
func (s *Session) History() []IterationRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]IterationRecord, len(s.history))
	copy(out, s.history)
	return out
}

// recordHistory appends an iteration record derived from a run result.
// The caller holds s.mu.
func (s *Session) recordHistory(wf *Workflow, res *Result, started time.Time, changed []string) {
	rec := IterationRecord{
		Iteration:    res.Iteration,
		WorkflowName: wf.Name(),
		Started:      started,
		Wall:         res.Wall,
		States:       make(map[State]int, 3),
		Changed:      changed,
		MatTime:      res.MatTime,
		StorageBytes: res.StorageBytes,
	}
	for st, n := range res.StateCounts {
		rec.States[st] = n
	}
	s.history = append(s.history, rec)
}

// changedOperators lists nodes marked original by the engine's change
// tracking. It recomputes signatures against the previous DAG, matching
// what the engine did during the run.
func changedOperators(d *core.DAG, prev *core.DAG) []string {
	var out []string
	for n := range d.OriginalNodes(prev) {
		out = append(out, n.Name)
	}
	sort.Strings(out)
	return out
}
