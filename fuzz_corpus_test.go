package helix_test

import (
	"context"
	"path/filepath"
	"testing"

	"helix/internal/fuzz"
)

// TestFuzzRegressionCorpus replays every committed corpus case under
// testdata/fuzz through the full five-invariant harness
// (internal/fuzz). The corpus holds minimized cases from past fuzz
// failures plus seed cases pinning the steady-state plan-cache behavior
// (cold → partial → full hit) — each one a scenario that must keep
// passing. cmd/helixfuzz appends new entries here when a fuzz run
// fails.
func TestFuzzRegressionCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fuzz corpus cases under testdata/fuzz")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			v, err := fuzz.Replay(context.Background(), f)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Fatalf("corpus case regressed: %s", v)
			}
		})
	}
}
