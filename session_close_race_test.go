package helix

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// slowWorkflow is a two-operator pipeline whose source blocks until
// release is closed, holding a Run in flight for as long as the test
// needs.
func slowWorkflow(release <-chan struct{}, started *atomic.Bool) *Workflow {
	wf := New("slow")
	src := wf.Source("data", "v1", func(ctx context.Context, in []Value) (Value, error) {
		started.Store(true)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []string{"a", "b"}, nil
	})
	wf.Reducer("out", "len", func(ctx context.Context, in []Value) (Value, error) {
		return float64(len(in[0].([]string))), nil
	}, src).IsOutput()
	return wf
}

// TestCloseBlocksOnInFlightRun: Close called while a Run is executing
// must wait for the iteration to complete — the run's results stay
// valid, its materializations are flushed, no goroutine leaks — and the
// next Run must see ErrSessionClosed. Run under -race, this also proves
// the Close/Run interleaving is data-race free.
func TestCloseBlocksOnInFlightRun(t *testing.T) {
	before := runtime.NumGoroutine()

	sess, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var started atomic.Bool
	type runOut struct {
		res *Result
		err error
	}
	runDone := make(chan runOut, 1)
	go func() {
		res, err := sess.Run(context.Background(), slowWorkflow(release, &started))
		runDone <- runOut{res, err}
	}()

	// Wait until the run is genuinely inside an operator body.
	for !started.Load() {
		time.Sleep(time.Millisecond)
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- sess.Close() }()

	// Close must block while the run is in flight, not tear the store
	// down under it.
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned (%v) while a Run was still executing", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	out := <-runDone
	if out.err != nil {
		t.Fatalf("in-flight Run failed during Close: %v", out.err)
	}
	if out.res.Values["out"] != 2.0 {
		t.Fatalf("in-flight Run output = %v, want 2", out.res.Values["out"])
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close after run completion: %v", err)
	}

	// The next Run (and Plan) must fail cleanly.
	var c atomic.Int64
	if _, err := sess.Run(context.Background(), buildWorkflow(&c, "LR reg=0.1")); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Run after Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Plan(buildWorkflow(&c, "LR reg=0.1")); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Plan after Close: err = %v, want ErrSessionClosed", err)
	}
	if c.Load() != 0 {
		t.Fatal("post-Close calls executed operators")
	}

	// No goroutine may outlive the session (writer pool, scheduler,
	// samplers). Allow the runtime a few settle iterations.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after Close: %d → %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseRacingRunEntry: a Close racing the very start of a Run must
// end with either a clean completed iteration or a clean
// ErrSessionClosed — never a torn store or a panic. Exercised many times
// to give -race interleavings to chew on.
func TestCloseRacingRunEntry(t *testing.T) {
	for i := 0; i < 20; i++ {
		sess, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		var c atomic.Int64
		wf := buildWorkflow(&c, "LR reg=0.1")
		errCh := make(chan error, 1)
		go func() {
			_, err := sess.Run(context.Background(), wf)
			errCh <- err
		}()
		if err := sess.Close(); err != nil {
			t.Fatalf("iter %d: Close: %v", i, err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("iter %d: Run racing Close: err = %v, want nil or ErrSessionClosed", i, err)
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("iter %d: second Close: %v", i, err)
		}
	}
}
