package helix

import (
	"context"
	"strings"
	"testing"
)

func passthrough(v Value) Func {
	return func(ctx context.Context, in []Value) (Value, error) { return v, nil }
}

func TestWorkflowDeclarationAndCompile(t *testing.T) {
	wf := New("test")
	src := wf.Source("data", "v1", passthrough("raw"))
	rows := wf.Scanner("rows", "csv", func(ctx context.Context, in []Value) (Value, error) {
		return in[0].(string) + "-parsed", nil
	}, src)
	wf.Reducer("check", "acc", passthrough(1.0), rows).IsOutput()

	prog, err := wf.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if prog.DAG.Len() != 3 {
		t.Fatalf("nodes = %d", prog.DAG.Len())
	}
	if len(prog.DAG.Outputs()) != 1 || prog.DAG.Outputs()[0].Name != "check" {
		t.Fatal("output not marked")
	}
	rowsNode := prog.DAG.Node("rows")
	if len(rowsNode.Parents()) != 1 || rowsNode.Parents()[0].Name != "data" {
		t.Fatal("edge data→rows missing")
	}
}

func TestWorkflowDuplicateNameFails(t *testing.T) {
	wf := New("dup")
	wf.Source("x", "v1", passthrough(1))
	wf.Source("x", "v1", passthrough(2))
	if _, err := wf.Compile(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate", err)
	}
}

func TestWorkflowEmptyNameFails(t *testing.T) {
	wf := New("empty")
	wf.Source("", "v1", passthrough(1))
	if _, err := wf.Compile(); err == nil {
		t.Fatal("expected error for empty name")
	}
}

func TestWorkflowNilFunctionFails(t *testing.T) {
	wf := New("nilfn")
	wf.Source("x", "v1", nil)
	if _, err := wf.Compile(); err == nil {
		t.Fatal("expected error for nil function")
	}
}

func TestWorkflowNilInputFails(t *testing.T) {
	wf := New("nilin")
	wf.Scanner("s", "v1", passthrough(1), nil)
	if _, err := wf.Compile(); err == nil {
		t.Fatal("expected error for nil input")
	}
}

func TestWorkflowCrossWorkflowInputFails(t *testing.T) {
	w1 := New("w1")
	foreign := w1.Source("f", "v1", passthrough(1))
	w2 := New("w2")
	w2.Scanner("s", "v1", passthrough(1), foreign)
	if _, err := w2.Compile(); err == nil {
		t.Fatal("expected error for cross-workflow input")
	}
}

func TestUsesAddsHiddenDependency(t *testing.T) {
	// Paper §5.4: the uses keyword protects UDF dependencies from pruning.
	wf := New("uses")
	src := wf.Source("data", "v1", passthrough("d"))
	target := wf.Extractor("target", "col=target", passthrough("t"), src)
	red := wf.Reducer("check", "acc", func(ctx context.Context, in []Value) (Value, error) {
		return len(in), nil
	}, src)
	red.Uses(target).IsOutput()
	prog, err := wf.Compile()
	if err != nil {
		t.Fatal(err)
	}
	n := prog.DAG.Node("check")
	if len(n.Parents()) != 2 {
		t.Fatalf("check parents = %d, want 2 (input + uses)", len(n.Parents()))
	}
	// target is protected from pruning by the uses edge.
	live := prog.DAG.Slice()
	if !live[prog.DAG.Node("target")] {
		t.Fatal("uses dependency pruned")
	}
}

func TestSignatureReflectsParams(t *testing.T) {
	w1 := New("a")
	w1.Source("x", "v1", passthrough(1)).IsOutput()
	p1, err := w1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	w2 := New("a")
	w2.Source("x", "v2", passthrough(1)).IsOutput()
	p2, err := w2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p1.DAG.ComputeSignatures()
	p2.DAG.ComputeSignatures()
	if p1.DAG.Node("x").ChainSignature() == p2.DAG.Node("x").ChainSignature() {
		t.Fatal("changed params must change the signature")
	}
	w3 := New("a")
	w3.Source("x", "v1", passthrough(1)).IsOutput()
	p3, err := w3.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p3.DAG.ComputeSignatures() // different nonce must not matter for deterministic ops
	if p1.DAG.Node("x").ChainSignature() != p3.DAG.Node("x").ChainSignature() {
		t.Fatal("identical declarations must have identical signatures")
	}
}

func TestNondeterministicFlagReachesDAG(t *testing.T) {
	w := New("nd")
	w.Source("r", "v1", passthrough(1)).Nondeterministic().IsOutput()
	p, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.DAG.Node("r").Deterministic {
		t.Fatal("Nondeterministic() not propagated to the DAG node")
	}
	// The signature stays stable — non-reuse of the node itself is
	// enforced by the engine (no materialization, infinite load cost).
	p.DAG.ComputeSignatures()
	sig1 := p.DAG.Node("r").ChainSignature()
	p.DAG.ComputeSignatures()
	if sig1 != p.DAG.Node("r").ChainSignature() {
		t.Fatal("signature must be stable across recomputation")
	}
}

func TestWorkflowCycleFails(t *testing.T) {
	wf := New("cycle")
	a := wf.Source("a", "v1", passthrough(1))
	b := wf.Scanner("b", "v1", passthrough(1), a)
	// Manually wire a cycle through declared inputs.
	a.inputs = append(a.inputs, b)
	if _, err := wf.Compile(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestOpAccessors(t *testing.T) {
	wf := New("acc")
	o := wf.Source("x", "v1", passthrough(1))
	if o.Name() != "x" || wf.Op("x") != o || wf.Name() != "acc" {
		t.Fatal("accessors broken")
	}
	if len(wf.Ops()) != 1 {
		t.Fatal("Ops() wrong")
	}
	if wf.Err() != nil {
		t.Fatal("unexpected sticky error")
	}
}
