package helix

import (
	"fmt"
)

// Option configures a Session. Options apply at two scopes:
//
//   - Session scope: pass to Open. The resulting configuration is the
//     session's baseline for every subsequent iteration.
//   - Run scope: pass to Session.Run or Session.Plan. The option
//     overrides the baseline for that one call only — the next call
//     without options is back on the baseline.
//
// Run-scoped overrides are safe with the plan cache: every knob that can
// change planning or execution decisions is folded into the plan
// fingerprint's configuration token, so a plan built under one
// configuration is never reused under another, and reverting an override
// restores full-fingerprint hits against the earlier configuration's
// cached plan.
//
// A few options configure the store or the plan cache itself, which
// exist once per session; those are marked session-scoped in their
// documentation, and passing one to Run or Plan returns an error
// satisfying errors.Is(err, ErrSessionOption).
type Option struct {
	name        string
	sessionOnly bool
	apply       func(*config)
}

// config is a Session's resolved configuration: the legacy Options knob
// set plus the option-only additions. A Session keeps its baseline
// config; Run/Plan copy it and apply run-scoped overrides.
//
// helixlint (fingerprintfields) checks every field against configToken,
// the plan-cache conditioning token: a new field must either feed the
// token or carry an //lint:fpexempt reason saying why plan reuse is
// safe without it.
//
//lint:fingerprint configToken
type config struct {
	o Options
	//lint:fpexempt I/O pool sizing, not plan identity (mirrors exec.Options.IOWorkers)
	ioWorkers int
	//lint:fpexempt observer wiring never affects plan identity
	observer RunObserver
	// shared attaches the session to a cross-session content-addressed
	// store + plan cache (WithSharedStore); nil opens a private store.
	//lint:fpexempt store attachment, not plan identity; the store's materialized view enters the fingerprint as per-node chain signatures
	shared *SharedStore
	// tenant labels published artifacts for shared-store byte accounting
	// (WithTenant). Deliberately not part of configToken: tenants under
	// identical configurations share plans — only byte accounting is
	// namespaced.
	//lint:fpexempt byte-accounting label on published artifacts; content addressing already keys identity
	tenant string
	// adaptive arms mid-run adaptive re-planning with the given divergence
	// threshold (WithAdaptive); 0 disables.
	adaptive float64
	// adaptiveSolves bounds the extra max-flow solves adaptive re-planning
	// may spend per run; ≤0 uses the engine default.
	adaptiveSolves int
	// runScope records which scope the options are being applied at, for
	// options whose scope depends on their arguments (WithWorkerClass).
	//lint:fpexempt transient apply-time state, discarded before planning
	runScope bool
	// err records the first invalid option value; checked after apply.
	//lint:fpexempt transient apply-time state, discarded before planning
	err error
}

// apply folds opts into the config. runScope rejects session-only
// options; any invalid option value surfaces as the returned error.
func (c *config) apply(opts []Option, runScope bool) error {
	c.runScope = runScope
	for _, op := range opts {
		if op.apply == nil {
			continue
		}
		if runScope && op.sessionOnly {
			return tagged(ErrSessionOption, fmt.Errorf("helix: %s is session-scoped, pass it to Open", op.name))
		}
		op.apply(c)
	}
	return c.err
}

// budget resolves the effective storage budget (the paper's 10 GB
// default, §6.3).
func (c *config) budget() int64 {
	if c.o.StorageBudget > 0 {
		return c.o.StorageBudget
	}
	return DefaultStorageBudget
}

// policyKey identifies the materialization-policy configuration. The
// session memoizes one policy instance per key, so a run-scoped override
// that reverts to an earlier configuration resumes that configuration's
// policy state (e.g. OMP's consumed budget) instead of resetting it.
func (c *config) policyKey() string {
	return fmt.Sprintf("policy=%d budget=%d threshold=%g domain=%q",
		c.o.Policy, c.budget(), c.o.OMPThreshold, c.o.Domain)
}

// configToken is the plan-cache conditioning token: every engine-level
// setting plan reuse must be conditioned on. Two runs whose tokens
// differ fingerprint differently and can never reuse each other's plans.
// (Planner-level knobs — reuse, pruning, output materialization — are
// fingerprinted separately as plan.Options.)
func (c *config) configToken() string {
	return fmt.Sprintf("policy=%d budget=%d threshold=%g domain=%q parallelism=%d adaptive=%g/%d",
		c.o.Policy, c.budget(), c.o.OMPThreshold, c.o.Domain, c.o.Parallelism,
		c.adaptive, c.adaptiveSolves)
}

// WorkerClass names one of the execution scheduler's worker pools, for
// WithWorkerClass.
type WorkerClass string

const (
	// WorkerCompute is the compute pool: at most this many operators
	// compute concurrently (the Options.Parallelism knob).
	WorkerCompute WorkerClass = "compute"
	// WorkerIO is the I/O pool draining Load-state nodes; loads are
	// disk/throttle-bound, so the pool is sized independently of compute
	// (default max(compute parallelism, 4), capped by the plan's load
	// count).
	WorkerIO WorkerClass = "io"
	// WorkerMat is the store's background writer pool flushing
	// write-behind materializations (≤0 restores the store default).
	// Session-scoped — the pool belongs to the store — so this class is
	// only accepted by Open; WithWorkerClass(WorkerMat, n) is equivalent
	// to WithMatWriters(n).
	WorkerMat WorkerClass = "mat"
)

// WithPolicy selects the materialization strategy (the paper's system
// variants, §6.1). Run-scoped overrides A/B policies within one session;
// each distinct policy configuration keeps its own policy instance, so
// budget accounting survives switching away and back.
func WithPolicy(p Policy) Option {
	return Option{name: "WithPolicy", apply: func(c *config) { c.o.Policy = p }}
}

// WithStorageBudget caps materialized bytes for the budgeted policies;
// ≤0 restores the paper's 10 GB default (§6.3).
func WithStorageBudget(bytes int64) Option {
	return Option{name: "WithStorageBudget", apply: func(c *config) { c.o.StorageBudget = bytes }}
}

// WithOMPThreshold overrides Algorithm 2's load-cost multiplier; 0
// restores the paper's value of 2.
func WithOMPThreshold(t float64) Option {
	return Option{name: "WithOMPThreshold", apply: func(c *config) { c.o.OMPThreshold = t }}
}

// WithDomain selects the change-probability distribution for
// PolicyOptAmortized ("census", "nlp", "genomics", "mnist").
func WithDomain(domain string) Option {
	return Option{name: "WithDomain", apply: func(c *config) { c.o.Domain = domain }}
}

// WithReuse toggles cross-iteration reuse of materialized results;
// disabling models the KeystoneML/DeepDive baselines, which never reuse
// automatically. Default on.
func WithReuse(enabled bool) Option {
	return Option{name: "WithReuse", apply: func(c *config) { c.o.DisableReuse = !enabled }}
}

// WithPruning toggles program slicing (§5.4); disabling is the ablation
// baseline. Default on.
func WithPruning(enabled bool) Option {
	return Option{name: "WithPruning", apply: func(c *config) { c.o.DisablePruning = !enabled }}
}

// WithMemorySampling toggles heap sampling for Figure 10; costs a
// background goroutine while a run is in flight. Default off.
func WithMemorySampling(enabled bool) Option {
	return Option{name: "WithMemorySampling", apply: func(c *config) { c.o.SampleMemory = enabled }}
}

// WithDPRSlowdown multiplies DPR operator cost (models DeepDive's
// Python/shell preprocessing, §6.5.2). 0 or 1 disables.
func WithDPRSlowdown(factor float64) Option {
	return Option{name: "WithDPRSlowdown", apply: func(c *config) { c.o.DPRSlowdown = factor }}
}

// WithLISlowdown multiplies L/I operator cost (models KeystoneML's
// training-data caching miss, §6.5.2). 0 or 1 disables.
func WithLISlowdown(factor float64) Option {
	return Option{name: "WithLISlowdown", apply: func(c *config) { c.o.LISlowdown = factor }}
}

// WithStreaming toggles fused streaming execution of row-wise operators
// (MapRows, FilterRows, FlatMapRows): when on (the default), the planner
// fuses linear chains of them into single scheduled units with
// per-element pull, so interior collections are never built. Disabling
// falls back to per-operator batch execution — byte-identical results
// (asserted by the fuzz harness), one collection and one barrier per
// operator. Run-scoped overrides are plan-cache safe: the streaming bit
// is part of the plan fingerprint.
func WithStreaming(enabled bool) Option {
	return Option{name: "WithStreaming", apply: func(c *config) { c.o.DisableStreaming = !enabled }}
}

// WithCodec selects the store's serialization format: CodecBinary (the
// default columnar binary codec) or CodecGob (legacy encoding/gob).
// Readers sniff the format per artifact, so a store written under one
// codec stays loadable under the other. Session-scoped: the codec
// belongs to the store.
func WithCodec(c Codec) Option {
	return Option{name: "WithCodec", sessionOnly: true,
		apply: func(cfg *config) { cfg.o.Codec = c }}
}

// WithSyncMaterialization, when enabled, serializes and writes
// materializations inline on the worker goroutine that computed them —
// the paper-faithful accounting — instead of the default write-behind
// pipeline.
func WithSyncMaterialization(enabled bool) Option {
	return Option{name: "WithSyncMaterialization", apply: func(c *config) { c.o.SyncMaterialization = enabled }}
}

// WithParallelism bounds the compute worker pool: at most n operators
// compute concurrently regardless of DAG width; ≤0 uses
// runtime.GOMAXPROCS(0). Equivalent to WithWorkerClass(WorkerCompute, n).
func WithParallelism(n int) Option {
	return Option{name: "WithParallelism", apply: func(c *config) { c.o.Parallelism = n }}
}

// WithWorkerClass sizes one of the session's worker pools:
// WorkerCompute bounds concurrent operator computation, WorkerIO sizes
// the Load-state pool (≤0 restores its max(parallelism, 4) heuristic),
// and WorkerMat sizes the store's write-behind materialization pool.
// WorkerMat is session-scoped (the pool belongs to the store); passing
// it to Run or Plan returns an error satisfying
// errors.Is(err, ErrSessionOption). Unknown classes are rejected when
// the options are applied.
func WithWorkerClass(class WorkerClass, size int) Option {
	return Option{name: "WithWorkerClass", apply: func(c *config) {
		switch class {
		case WorkerCompute:
			c.o.Parallelism = size
		case WorkerIO:
			c.ioWorkers = size
		case WorkerMat:
			if c.runScope {
				if c.err == nil {
					c.err = tagged(ErrSessionOption, fmt.Errorf("helix: WithWorkerClass(WorkerMat, …) is session-scoped, pass it to Open"))
				}
				return
			}
			c.o.MatWriters = size
		default:
			if c.err == nil {
				c.err = fmt.Errorf("helix: unknown worker class %q (want %q, %q or %q)", class, WorkerCompute, WorkerIO, WorkerMat)
			}
		}
	}}
}

// WithScheduler selects the ready-queue ordering: SchedCriticalPath
// (default) starts the node with the longest projected downstream chain
// first; SchedFIFO forces pure arrival order.
func WithScheduler(mode SchedMode) Option {
	return Option{name: "WithScheduler", apply: func(c *config) { c.o.CriticalPath = mode }}
}

// WithAdaptive arms mid-run adaptive re-planning with the given
// divergence threshold; threshold ≤ 0 disables it (the default).
//
// While a run executes, the engine compares each completed node's
// measured own time against the plan's projection and accumulates both.
// When the relative divergence |measured − projected| / projected over
// completed nodes exceeds threshold (0.5 means "the finished portion of
// the run cost 50% more or less than planned"), the engine corrects the
// cost estimates of not-yet-started operators from what it has observed
// so far and re-plans the remainder of the run in place: already-running
// and finished nodes are untouched; pending Compute nodes whose loads
// became the cheaper choice are swapped to loads. Each re-plan is
// reported as a ReplanEvent (see WithObserver), and the run's
// RunStatsEvent totals solves, re-plans, and swaps.
//
// Re-planning is plan-cache safe. Corrections only touch operators that
// have not started, so completed work never changes the fingerprint
// retroactively; the recomputed fingerprint differs from the initial
// plan's only on components whose cost estimates actually moved, and the
// cache's partial path re-solves just those components, reusing the rest
// row-for-row. A re-plan whose corrections all fall inside the gating
// bands writes nothing, fingerprints identically, and costs zero solves.
// The threshold (and solve bound) are folded into the configuration
// token, so adaptive and non-adaptive runs never share cache entries.
//
// Extra max-flow solves per run are bounded (default 3) to keep
// speculation cheap; once the bound is spent the monitor disarms for the
// rest of the run. Usable at session scope (every run adapts) or run
// scope (that run only). See BENCH_adaptive.json (README) for the
// measured static-vs-adaptive comparison.
func WithAdaptive(threshold float64) Option {
	return Option{name: "WithAdaptive", apply: func(c *config) {
		if threshold < 0 {
			threshold = 0
		}
		c.adaptive = threshold
	}}
}

// WithObserver installs a RunObserver receiving the run's structured
// events. At session scope every Run reports to it; a run-scoped
// WithObserver replaces it for that call (WithObserver(nil) silences one
// run).
func WithObserver(obs RunObserver) Option {
	return Option{name: "WithObserver", apply: func(c *config) { c.observer = obs }}
}

// WithDiskThroughput simulates a disk with the given byte/s throughput
// for loads and writes; 0 uses real disk speed. The paper's environment
// is 170 MB/s (§6.3). Session-scoped: the store is configured once.
func WithDiskThroughput(bytesPerSec float64) Option {
	return Option{name: "WithDiskThroughput", sessionOnly: true,
		apply: func(c *config) { c.o.DiskBytesPerSec = bytesPerSec }}
}

// WithMatWriters sizes the store's background writer pool for
// write-behind materialization; ≤0 uses the store default.
// Session-scoped: the pool belongs to the store. Equivalent to
// WithWorkerClass(WorkerMat, n).
func WithMatWriters(n int) Option {
	return Option{name: "WithMatWriters", sessionOnly: true,
		apply: func(c *config) { c.o.MatWriters = n }}
}

// WithPlanCache toggles the iteration-over-iteration plan cache.
// Session-scoped: the cache holds cross-iteration state.
func WithPlanCache(mode PlanCacheMode) Option {
	return Option{name: "WithPlanCache", sessionOnly: true,
		apply: func(c *config) { c.o.PlanCache = mode }}
}

// WithOptions applies a legacy Options struct wholesale — the bridge the
// deprecated NewSession shim is built on, and a one-line migration step
// for existing call sites. Later options override its fields.
// Session-scoped because the struct carries store-level settings.
func WithOptions(o Options) Option {
	return Option{name: "WithOptions", sessionOnly: true,
		apply: func(c *config) { c.o = o }}
}
