package helix

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func init() {
	RegisterType("")
	RegisterType(0)
	RegisterType(0.0)
	RegisterType([]string(nil))
}

// buildWorkflow constructs a small DPR→L/I→PPR pipeline whose operators
// sleep long enough that loading beats recomputing, with counters to
// observe execution. learnerParams lets tests model an L/I iteration.
func buildWorkflow(calls *atomic.Int64, learnerParams string) *Workflow {
	wf := New("sess-test")
	delay := 10 * time.Millisecond
	src := wf.Source("data", "v1", func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		time.Sleep(delay)
		return []string{"a", "b", "c"}, nil
	})
	rows := wf.Scanner("rows", "csv", func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		time.Sleep(delay)
		return len(in[0].([]string)), nil
	}, src)
	model := wf.Learner("model", learnerParams, func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		time.Sleep(delay)
		if learnerParams == "LR reg=0.1" {
			return in[0].(int) * 100, nil
		}
		return in[0].(int) * 200, nil
	}, rows)
	wf.Reducer("checked", "acc", func(ctx context.Context, in []Value) (Value, error) {
		calls.Add(1)
		time.Sleep(delay)
		return float64(in[0].(int)), nil
	}, model).IsOutput()
	return wf
}

func TestSessionFirstIterationComputesAll(t *testing.T) {
	sess, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	res, err := sess.Run(context.Background(), buildWorkflow(&calls, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["checked"] != 300.0 {
		t.Fatalf("output = %v", res.Values["checked"])
	}
	if calls.Load() != 4 {
		t.Fatalf("calls = %d, want 4", calls.Load())
	}
	if sess.Iteration() != 1 {
		t.Fatalf("iteration = %d", sess.Iteration())
	}
}

func TestSessionIdenticalRerunLoadsOutput(t *testing.T) {
	sess, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var c1 atomic.Int64
	if _, err := sess.Run(ctx, buildWorkflow(&c1, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	var c2 atomic.Int64
	res, err := sess.Run(ctx, buildWorkflow(&c2, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["checked"] != 300.0 {
		t.Fatalf("output = %v", res.Values["checked"])
	}
	if c2.Load() != 0 {
		t.Fatalf("identical rerun executed %d operators", c2.Load())
	}
}

func TestSessionLIIterationReusesDPR(t *testing.T) {
	// Paper §2.3: on an L/I change, DPR results are loaded, not recomputed.
	sess, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var c1 atomic.Int64
	if _, err := sess.Run(ctx, buildWorkflow(&c1, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	var c2 atomic.Int64
	res, err := sess.Run(ctx, buildWorkflow(&c2, "LR reg=0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["checked"] != 600.0 {
		t.Fatalf("output = %v, want updated 600", res.Values["checked"])
	}
	// model + checked recompute; data and rows must not.
	if c2.Load() != 2 {
		t.Fatalf("L/I iteration executed %d operators, want 2", c2.Load())
	}
	if res.Nodes["rows"].State == StateCompute {
		t.Fatal("rows recomputed on an L/I iteration")
	}
	if res.Nodes["model"].State != StateCompute {
		t.Fatal("changed model not recomputed")
	}
}

func TestSessionDisableReuseRecomputes(t *testing.T) {
	sess, err := NewSession(t.TempDir(), Options{DisableReuse: true, Policy: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		var c atomic.Int64
		if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.1")); err != nil {
			t.Fatal(err)
		}
		if c.Load() != 4 {
			t.Fatalf("iteration %d executed %d operators, want 4", i, c.Load())
		}
	}
	if sess.StorageBytes() != 0 {
		t.Fatal("PolicyNever stored bytes")
	}
}

func TestSessionPolicyAlwaysStoresEverything(t *testing.T) {
	sess, err := NewSession(t.TempDir(), Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	var c atomic.Int64
	if _, err := sess.Run(context.Background(), buildWorkflow(&c, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if sess.StorageBytes() == 0 {
		t.Fatal("PolicyAlways stored nothing")
	}
}

func TestSessionInvalidOptions(t *testing.T) {
	if _, err := NewSession(t.TempDir(), Options{Policy: Policy(99)}); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if _, err := NewSession(t.TempDir(), Options{}, Options{}); err == nil {
		t.Fatal("expected error for multiple Options")
	}
}

func TestSessionCompileErrorSurfaced(t *testing.T) {
	sess, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wf := New("bad")
	wf.Source("x", "v1", nil)
	if _, err := sess.Run(context.Background(), wf); err == nil {
		t.Fatal("expected compile error")
	}
	if sess.Iteration() != 0 {
		t.Fatal("failed run advanced the iteration counter")
	}
}

func TestSessionRunTimed(t *testing.T) {
	sess, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var c atomic.Int64
	_, dur, err := sess.RunTimed(context.Background(), buildWorkflow(&c, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if dur < 40*time.Millisecond {
		t.Fatalf("duration %v implausibly small for 4 sleeping operators", dur)
	}
}

// TestSessionTheorem1AcrossManyChanges drives a change sequence through
// every component and checks outputs always match a reuse-free session.
func TestSessionTheorem1AcrossManyChanges(t *testing.T) {
	ctx := context.Background()
	withReuse, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	noReuse, err := NewSession(t.TempDir(), Options{DisableReuse: true, Policy: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	params := []string{"LR reg=0.1", "LR reg=0.5", "LR reg=0.5", "LR reg=0.1", "LR reg=0.1"}
	for i, p := range params {
		var cA, cB atomic.Int64
		rA, err := withReuse.Run(ctx, buildWorkflow(&cA, p))
		if err != nil {
			t.Fatal(err)
		}
		rB, err := noReuse.Run(ctx, buildWorkflow(&cB, p))
		if err != nil {
			t.Fatal(err)
		}
		if rA.Values["checked"] != rB.Values["checked"] {
			t.Fatalf("iteration %d: reuse output %v != scratch output %v (Theorem 1)",
				i, rA.Values["checked"], rB.Values["checked"])
		}
	}
}
