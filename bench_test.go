package helix_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). Each benchmark runs the corresponding experiment via
// internal/bench and reports paper-shaped custom metrics alongside Go's
// ns/op. Run all of them with:
//
//	go test -bench=. -benchmem
//
// The helixbench command prints the full row-by-row output:
//
//	go run ./cmd/helixbench -exp all

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"helix/internal/bench"
	"helix/internal/core"
	"helix/internal/data"
	"helix/internal/ml"
	"helix/internal/nlp"
	"helix/internal/opt"
	"helix/internal/store"
	"helix/internal/workloads"
)

func init() { workloads.RegisterAll() }

func benchConfig() bench.Config {
	return bench.Config{Scale: workloads.Scale{Rows: 1, CostFactor: 40}, Seed: 1}
}

// BenchmarkTable1_BasisCoverage checks the static Scikit-learn coverage
// mapping renders (Table 1); it is a table, not a timing, so the bench
// simply exercises the path.
func BenchmarkTable1_BasisCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Table1()) != 9 {
			b.Fatal("Table 1 must have 9 rows")
		}
	}
}

// BenchmarkTable2_UseCaseSupport regenerates the support matrix (Table 2).
func BenchmarkTable2_UseCaseSupport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table2()
		if len(rows) != 4 {
			b.Fatal("Table 2 must have 4 workloads")
		}
	}
}

// BenchmarkFigure5_CumulativeRunTime regenerates Figure 5: cumulative run
// time across iterations for HELIX OPT vs KeystoneML vs DeepDive on all
// four workflows. Custom metrics report the headline speedups.
func BenchmarkFigure5_CumulativeRunTime(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig5(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup("census", "keystoneml"), "census-speedup-vs-keystoneml")
		b.ReportMetric(r.Speedup("genomics", "keystoneml"), "genomics-speedup-vs-keystoneml")
		b.ReportMetric(r.Speedup("nlp", "deepdive"), "nlp-speedup-vs-deepdive")
		b.ReportMetric(r.Speedup("mnist", "keystoneml"), "mnist-speedup-vs-keystoneml")
	}
}

// BenchmarkFigure6_Breakdown regenerates Figure 6: HELIX OPT's
// per-iteration run time broken down by DPR / L/I / PPR plus
// materialization time.
func BenchmarkFigure6_Breakdown(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig6(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// PPR iterations of census should be near-free vs iteration 0.
		s := r.Series["census"]
		if len(s.Seconds) < 9 {
			b.Fatal("census series too short")
		}
		b.ReportMetric(s.Seconds[0]/s.Seconds[8], "census-iter0-over-ppr-iter")
	}
}

// BenchmarkFigure7a_DataScaling regenerates Figure 7a: census vs
// census10x cumulative time for HELIX and KeystoneML on one node.
func BenchmarkFigure7a_DataScaling(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig7a(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		hx := r.SizeScaling["census10x"]["helix-opt"] / r.SizeScaling["census"]["helix-opt"]
		ks := r.SizeScaling["census10x"]["keystoneml"] / r.SizeScaling["census"]["keystoneml"]
		b.ReportMetric(hx, "helix-10x-scale-factor")
		b.ReportMetric(ks, "keystoneml-10x-scale-factor")
	}
}

// BenchmarkFigure7b_ClusterScaling regenerates Figure 7b: census10x on
// simulated clusters of 2/4/8 workers.
func BenchmarkFigure7b_ClusterScaling(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig7b(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ClusterScaling[2]["helix-opt"], "helix-2workers-s")
		b.ReportMetric(r.ClusterScaling[4]["helix-opt"], "helix-4workers-s")
		b.ReportMetric(r.ClusterScaling[8]["helix-opt"], "helix-8workers-s")
	}
}

// BenchmarkFigure8_StateFractions regenerates Figure 8: the fraction of
// nodes in S_p/S_l/S_c per iteration under HELIX OPT vs HELIX AM.
func BenchmarkFigure8_StateFractions(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig8(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// OPT should achieve the same compute fractions as AM (paper:
		// "HELIX OPT enables the exact same reuse as HELIX AM").
		optS := r.Series["census"]["helix-opt"].States
		amS := r.Series["census"]["helix-am"].States
		var mismatch float64
		for it := range optS {
			_, _, scOpt := bench.Fractions(optS[it])
			_, _, scAM := bench.Fractions(amS[it])
			d := scOpt - scAM
			if d < 0 {
				d = -d
			}
			mismatch += d
		}
		b.ReportMetric(mismatch, "census-compute-fraction-gap")
	}
}

// BenchmarkFigure9_MatPolicies regenerates Figure 9: cumulative run time
// for HELIX OPT vs AM vs NM, and storage for OPT vs AM.
func BenchmarkFigure9_MatPolicies(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig9(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		tc := r.Totals("census")
		b.ReportMetric(tc["helix-nm"]/tc["helix-opt"], "census-nm-over-opt")
		b.ReportMetric(tc["helix-am"]/tc["helix-opt"], "census-am-over-opt")
		st := r.FinalStorage("genomics")
		if st["helix-opt"] > 0 {
			b.ReportMetric(float64(st["helix-am"])/float64(st["helix-opt"]), "genomics-am-storage-over-opt")
		}
	}
}

// BenchmarkFigure10_Memory regenerates Figure 10: peak and average memory
// per iteration for HELIX.
func BenchmarkFigure10_Memory(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig10(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var peak uint64
		for _, s := range r.Series {
			for _, p := range s.PeakMem {
				if p > peak {
					peak = p
				}
			}
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak-mem-MB")
	}
}

// BenchmarkAblation_OMPThreshold sweeps Algorithm 2's load-cost threshold
// (the paper's choice is 2).
func BenchmarkAblation_OMPThreshold(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, thresholds, err := bench.AblationOMPThreshold(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, th := range thresholds {
			b.ReportMetric(res[th], "census-s-th"+itoa(int(th)))
		}
	}
}

// BenchmarkAblation_OEPvsGreedy quantifies the optimality gap of a greedy
// local reuse rule against the min-cut OEP solution on random DAGs.
func BenchmarkAblation_OEPvsGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mean, worst := bench.AblationOEPGreedy(200, 1)
		b.ReportMetric(mean*100, "mean-regret-pct")
		b.ReportMetric(worst*100, "worst-regret-pct")
	}
}

// BenchmarkAblation_Pruning measures the benefit of program slicing
// (paper §5.4).
func BenchmarkAblation_Pruning(b *testing.B) {
	ctx := context.Background()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		on, off, err := bench.AblationPruning(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(off/on, "pruning-off-over-on")
	}
}

// BenchmarkOEPSolver times the MAX-FLOW-based optimal execution planner
// itself (Algorithm 1) on random DAGs of increasing size — the
// compile-time cost HELIX pays per iteration.
func BenchmarkOEPSolver(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(itoa(n)+"nodes", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			d := core.NewDAG()
			nodes := make([]*core.Node, n)
			for i := range nodes {
				nodes[i] = d.MustAddNode("n"+itoa(i), core.KindExtractor, core.DPR, "op", true)
				if i > 0 {
					if err := d.AddEdge(nodes[i-1], nodes[i]); err != nil {
						b.Fatal(err)
					}
					for j := 0; j < i-1; j++ {
						if rng.Float64() < 4.0/float64(n) {
							if err := d.AddEdge(nodes[j], nodes[i]); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			}
			d.MarkOutput(nodes[n-1])
			costs := make(map[*core.Node]opt.Costs, n)
			for _, node := range nodes {
				c := opt.Costs{Compute: rng.Float64() * 10}
				if rng.Float64() < 0.5 {
					c.Load = rng.Float64() * 10
				} else {
					c.Load = math.Inf(1)
				}
				costs[node] = c
			}
			c := costs[nodes[n-1]]
			c.Required = true
			costs[nodes[n-1]] = c
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan := opt.OptimalStates(d, costs)
				if len(plan.States) != n {
					b.Fatal("incomplete plan")
				}
			}
		})
	}
}

// BenchmarkSubstrate_Word2Vec times the embedding learner on the
// genomics-scale corpus (the dominant operator of Figure 6b).
func BenchmarkSubstrate_Word2Vec(b *testing.B) {
	articles, _ := data.GenerateGenomics(data.GenomicsConfig{
		Articles: 100, SentencesPerArticle: 8, Genes: 60, Functions: 6, Seed: 1,
	})
	var sentences [][]string
	for _, a := range articles {
		for _, s := range nlp.SplitSentences(a.Text) {
			if toks := nlp.Tokenize(s); len(toks) > 0 {
				sentences = append(sentences, toks)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ml.Word2Vec{Dim: 24, Epochs: 1, Seed: 1}).Fit(sentences); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrate_NLPParse times the CoreNLP-stand-in parse at the IE
// workload's calibrated cost (the dominant operator of Figure 6c).
func BenchmarkSubstrate_NLPParse(b *testing.B) {
	articles, _ := data.GenerateIE(data.IEConfig{
		Articles: 50, SentencesPerArticle: 8, People: 40, SpousePairs: 15, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range articles {
			_ = nlp.Parse(a.ID, a.Text, 40)
		}
	}
}

// BenchmarkSubstrate_LogisticRegression times the census learner.
func BenchmarkSubstrate_LogisticRegression(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := &ml.Dataset{Dim: 40}
	for i := 0; i < 4000; i++ {
		elems := map[int]float64{}
		for j := 0; j < 8; j++ {
			elems[rng.Intn(40)] = rng.NormFloat64()
		}
		y := 0.0
		if rng.Float64() < 0.5 {
			y = 1
		}
		ds.Examples = append(ds.Examples, ml.Example{X: ml.Sparse(40, elems), Y: y, Train: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ml.LogisticRegression{RegParam: 0.1, Epochs: 5, Seed: 1}).Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrate_StoreRoundTrip times a materialize+load cycle of a
// census-sized intermediate through the gob store.
func BenchmarkSubstrate_StoreRoundTrip(b *testing.B) {
	dir := b.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]float64, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := "k" + itoa(i%8)
		if _, err := st.Put(key, "bench", payload, 0); err != nil {
			b.Fatal(err)
		}
		if _, _, err := st.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
