package helix

import "helix/internal/exec"

// RunObserver receives the structured events a running iteration emits.
// Install one with WithObserver — on the session (every Run reports to
// it) or on a single Run call (that run only). Events are delivered
// serially, but on whichever worker goroutine produced them: a slow
// observer slows the run, so hand heavy work to a channel. When no
// observer is installed, no events are constructed — instrumentation is
// free when off.
//
// An iteration's stream is, in order: one PlanEvent (how the plan was
// obtained and what it projects), then interleaved NodeEvents (a
// NodeStarted/NodeRetired pair per executing live node; solver-pruned
// live nodes retire immediately without starting) with zero or more
// ReplanEvents mixed in when WithAdaptive armed the divergence monitor,
// one FlushEvent (the write-behind barrier), and — on success only — one
// RunStatsEvent (planner health: cache outcome, solves, re-plans)
// followed by one DoneEvent. A failed run's stream simply ends; the
// error reaches the Run caller.
type RunObserver = exec.Observer

// RunEvent is one structured occurrence within a running iteration.
// Concrete types: PlanEvent, NodeEvent, ReplanEvent, FlushEvent,
// RunStatsEvent, DoneEvent.
type RunEvent = exec.Event

// PlanEvent reports the plan an iteration is about to execute: the
// plan-cache outcome (cold/partial/hit), the Equation-1 projection, time
// spent planning, and the live-node state mix. Exactly one per run,
// before any node starts.
type PlanEvent = exec.PlanEvent

// NodeEvent reports one operator's lifecycle transition (see NodePhase).
type NodeEvent = exec.NodeEvent

// ReplanEvent reports one mid-run re-planning attempt by the adaptive
// divergence monitor (WithAdaptive): measured times diverged past the
// threshold, frontier cost estimates were corrected from observation, and
// the planner reconsidered the not-yet-started remainder of the run.
type ReplanEvent = exec.ReplanEvent

// FlushEvent reports the write-behind flush barrier after the last node
// finished.
type FlushEvent = exec.FlushEvent

// RunStatsEvent summarizes the run's planner health — plan-cache outcome,
// total max-flow solves (initial plan plus adaptive re-plans), re-plan
// and swap counts. One per successful run, between flush and done.
type RunStatsEvent = exec.RunStatsEvent

// DoneEvent reports successful completion of the iteration.
type DoneEvent = exec.DoneEvent

// NodePhase distinguishes the lifecycle points a NodeEvent reports.
type NodePhase = exec.NodePhase

// Node lifecycle phases.
const (
	// NodeStarted fires when a worker picks the node up.
	NodeStarted = exec.NodeStarted
	// NodeRetired fires when the node goes out of scope: its own time is
	// final and its materialization decision has been made.
	NodeRetired = exec.NodeRetired
)
