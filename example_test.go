package helix_test

import (
	"context"
	"fmt"
	"os"
	"time"

	"helix"
)

// Example demonstrates the full workflow lifecycle: declare a pipeline,
// run it, change one operator (a PPR iteration), and run again — the
// second run loads the learner's result from disk and prunes everything
// upstream.
func Example() {
	helix.RegisterType([]int(nil))
	helix.RegisterType(0)
	helix.RegisterType(0.0)

	dir, err := os.MkdirTemp("", "helix-example-*")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	build := func(metric string) *helix.Workflow {
		wf := helix.New("demo")
		data := wf.Source("data", "v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			time.Sleep(20 * time.Millisecond) // simulate real work: loading beats recomputing
			return []int{1, 2, 3, 4}, nil
		})
		model := wf.Learner("model", "sum v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			time.Sleep(20 * time.Millisecond)
			total := 0
			for _, x := range in[0].([]int) {
				total += x
			}
			return total, nil
		}, data)
		wf.Reducer("checked", "metric="+metric, func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			if metric == "mean" {
				return float64(in[0].(int)) / 4, nil
			}
			return float64(in[0].(int)), nil
		}, model).IsOutput()
		return wf
	}

	sess, err := helix.NewSession(dir)
	if err != nil {
		fmt.Println(err)
		return
	}
	ctx := context.Background()

	res, _ := sess.Run(ctx, build("sum"))
	fmt.Println("iteration 0:", res.Values["checked"], "model state:", res.Nodes["model"].State)

	res, _ = sess.Run(ctx, build("mean"))
	fmt.Println("iteration 1:", res.Values["checked"], "model state:", res.Nodes["model"].State)
	// Output:
	// iteration 0: 10 model state: Sc
	// iteration 1: 2.5 model state: Sl
}
